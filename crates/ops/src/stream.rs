//! Streaming pipelined execution: bounded channels, double-buffered
//! Extract, and device-affine sharding.
//!
//! This is the true producer–consumer architecture of the paper's host
//! baseline (Section II-D) and of Fig. 9's training loop: preprocessing
//! workers *stream* finished mini-batches through a bounded channel to the
//! consumer (the trainer), instead of materializing every batch under one
//! lock and handing them over at the end — the stalled-trainer pattern
//! Meta's ingestion study calls out. The first mini-batch reaches the
//! consumer while later partitions are still being read.
//!
//! Three mechanisms, one per ROADMAP item this module retires:
//!
//! * **Bounded output channel** — [`BatchStream::spawn`] returns a
//!   [`BatchStream`] fed by a `capacity`-bounded MPSC channel (the vendored
//!   `crossbeam-channel`). Producers block when the consumer falls behind,
//!   so in-flight memory is `O(capacity)`, not `O(partitions)`. The
//!   [`BatchStream::into_ordered`] adapter restores deterministic
//!   partition order for consumers (and tests) that need it.
//! * **Double-buffered Extract** — with [`FleetConfig::prefetch`] on, each
//!   worker owns a prefetch thread that runs [`extract_partition_with`]
//!   (the projected `read_at_into` reads + decode, staged through a
//!   recycled [`ReadScratch`]) for partition *i + 1* while the worker
//!   transforms partition *i*: a one-slot hand-off channel holds exactly
//!   one extracted batch, so the two in-flight partitions are the two
//!   buffers. `FsBlob`'s positioned `pread` makes the concurrent reads
//!   safe across workers.
//! * **Device-affine sharding** — partitions are queued per storage device
//!   (`Partition::device`, cf. `Dataset::partitions_on`); workers are
//!   pinned round-robin to devices and steal cross-device only when their
//!   home queue drains. Per-device in-flight counters record contention
//!   when workers outnumber devices (see [`DeviceLoad`]).
//!
//! The same bounded-channel machinery also backs the hybrid
//! split-placement fleet (`presto_core::split::stream_split_workers`),
//! where the channel additionally models the ISP → host device link and
//! carries typed boundary hand-offs instead of finished mini-batches.
//!
//! # Failure semantics
//!
//! Every surfaced error carries provenance — it is wrapped as
//! [`PreprocessError::At`] with the failing partition index and device id —
//! so a consumer draining a many-device fleet can tell *which* device
//! failed without string parsing. What happens next is governed by the
//! [`RetryPolicy`] in [`FleetConfig::recovery`]:
//!
//! * **Fail-fast** (the default, [`RetryPolicy::fail_fast`]): the first
//!   worker error is forwarded into the stream as an `Err` item and the
//!   shared stop flag halts every producer within one partition — the
//!   original semantics, unchanged.
//! * **Recovery** ([`RetryPolicy::recover`] or any custom policy): a failed
//!   Extract attempt is retried up to [`RetryPolicy::max_attempts`] times
//!   with capped exponential backoff, but only when the error is
//!   *retryable* ([`PreprocessError::is_retryable`]: storage-side faults —
//!   I/O errors, CRC mismatches from corrupt pages, truncated reads).
//!   Deterministic plan/schema/shape errors surface immediately. Each
//!   device carries a consecutive-failure circuit breaker
//!   ([`RetryPolicy::quarantine_after`]): once tripped, workers stop
//!   claiming attempts against the device and its remaining partitions
//!   surface tagged errors instead of hanging the fleet — the host fleet
//!   *is* the fallback path, so a dead host-visible device has nowhere to
//!   fail over to (the ISP fleet in `presto_core::isp_worker` does fail
//!   over, to this path). Attempts that outrun
//!   [`RetryPolicy::straggler_deadline`] are counted post-hoc. With
//!   `fail_fast: false` the fleet keeps streaming past per-partition
//!   errors; every claimed partition ends as exactly one `Ok` batch or one
//!   tagged `Err` — nothing is dropped silently, which
//!   [`BatchStream::run_report`]'s accounting
//!   (`delivered + failed_partitions == partitions`) makes checkable.
//!
//! Dropping the stream (even with a full channel) stops and joins the
//! workers — no deadlock, verified by tests. [`BatchStream::run_report`]
//! snapshots the run's recovery activity ([`RunReport`]: retries,
//! quarantines, per-device fault counts, delivery timeline).
//!
//! [`run_workers`](crate::run_workers) is now a thin "drain the stream into
//! a `Vec`" wrapper over this module, bit-identical to serial execution.

use crate::executor::{
    extract_partition_with, preprocess_batch_owned, PreprocessError, ScratchSpace, StageTimings,
};
use crate::minibatch::MiniBatch;
use crate::plan::PreprocessPlan;
use crate::recovery::{RecoveryTracker, RetryPolicy, RunReport};
use crossbeam_channel::{bounded, Receiver, Sender};
use presto_columnar::{ColumnarError, ReadScratch};
use presto_datagen::{Partition, RowBatch};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration shared by every fleet — host CPU, emulated ISP, and the
/// hybrid split executor. One builder replaces the three divergent
/// pre-unification entry points (`StreamConfig`, the positional
/// `stream_isp_workers_with` arguments, and the 7-argument
/// `stream_split_workers_with`).
///
/// # Recovery default — the single source of truth
///
/// Every fleet defaults to **fail-fast** failure handling
/// ([`RetryPolicy::fail_fast`]): the first error is forwarded into the
/// stream and the fleet halts within one partition. Opt into retry /
/// quarantine / failover with [`FleetConfig::with_recovery`] — the same
/// knob, with the same default, for all three fleets. (Before the
/// unification the host fleet defaulted to fail-fast while the ISP and
/// split fleets required an explicit policy at every call site.)
///
/// # Per-fleet knobs
///
/// `workers` and `capacity` mean the same thing on every fleet. `prefetch`
/// only affects the host fleet (the ISP pipeline is inherently staged).
/// `host_workers` and `link_capacity` only affect the split fleet: the
/// host-side worker count (defaults to `workers`) and the bounded
/// ISP → host hand-off channel modelling the device link (defaults to
/// `capacity`).
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker (pipeline) count; clamped to `1..=partitions`. On the split
    /// fleet this is the ISP-side unit count.
    pub workers: usize,
    /// Output-channel capacity in mini-batches; producers block when full.
    pub capacity: usize,
    /// Overlap Extract of the next partition with Transform of the current
    /// one (host fleet only: one prefetch thread per worker,
    /// double-buffered at the batch level through a one-slot hand-off
    /// channel).
    pub prefetch: bool,
    /// Failure handling (retry, quarantine, straggler detection, ISP→host
    /// failover); defaults to [`RetryPolicy::fail_fast`] on every fleet.
    pub recovery: RetryPolicy,
    /// Split fleet only: host-side worker count. `None` mirrors `workers`.
    pub host_workers: Option<usize>,
    /// Split fleet only: capacity of the bounded ISP → host hand-off
    /// channel (the emulated device link). `None` mirrors `capacity`.
    pub link_capacity: Option<usize>,
}

impl FleetConfig {
    /// `workers` pipelines over a `capacity`-bounded channel, prefetch on,
    /// fail-fast failure handling.
    #[must_use]
    pub fn new(workers: usize, capacity: usize) -> Self {
        FleetConfig {
            workers,
            capacity,
            prefetch: true,
            recovery: RetryPolicy::fail_fast(),
            host_workers: None,
            link_capacity: None,
        }
    }

    /// Disables the Extract prefetch thread (host-fleet ablation switch).
    #[must_use]
    pub fn without_prefetch(mut self) -> Self {
        self.prefetch = false;
        self
    }

    /// Sets the failure-handling policy (all fleets).
    #[must_use]
    pub fn with_recovery(mut self, recovery: RetryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Sets the split fleet's host-side worker count.
    #[must_use]
    pub fn with_host_workers(mut self, host_workers: usize) -> Self {
        self.host_workers = Some(host_workers);
        self
    }

    /// Sets the split fleet's ISP → host hand-off channel capacity.
    #[must_use]
    pub fn with_link_capacity(mut self, link_capacity: usize) -> Self {
        self.link_capacity = Some(link_capacity);
        self
    }

    /// Effective host-side worker count for the split fleet.
    #[must_use]
    pub fn effective_host_workers(&self) -> usize {
        self.host_workers.unwrap_or(self.workers)
    }

    /// Effective ISP → host link capacity for the split fleet.
    #[must_use]
    pub fn effective_link_capacity(&self) -> usize {
        self.link_capacity.unwrap_or(self.capacity)
    }
}

/// One snapshot of a streaming fleet's counters — the consolidated stats
/// surface behind `BatchSource::stats()`, replacing the per-stream ad-hoc
/// accessors (`BatchStream::queued()`, `IspBatchStream::p2p_bytes()`,
/// `SplitBatchStream::boundary_bytes()`, fleet-specific `run_report()`s).
///
/// Counters that do not apply to a fleet are zero (`p2p_bytes` on the host
/// fleet, `boundary_bytes` everywhere but the split fleet). `recovery` is
/// `None` only for sources that do not track recovery at all (e.g. ad-hoc
/// test sources using the trait's default implementation).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StreamStats {
    /// Producer worker count (ISP-side units on the split fleet).
    pub workers: usize,
    /// Output-channel capacity in mini-batches.
    pub capacity: usize,
    /// Mini-batches buffered in the output channel right now.
    pub queued: usize,
    /// Partitions fully preprocessed so far (producer-side counter).
    pub completed: usize,
    /// Bytes moved over the emulated P2P / device link (ISP and split
    /// fleets; the host fleet reads through the page cache and reports 0).
    pub p2p_bytes: u64,
    /// Bytes of typed boundary hand-offs crossing the split fleet's
    /// ISP → host link (0 on single-fleet executors).
    pub boundary_bytes: u64,
    /// Recovery-activity snapshot (retries, quarantines, per-device fault
    /// counts, delivery accounting), when the source tracks recovery.
    pub recovery: Option<RunReport>,
}

/// Pre-unification host-fleet configuration.
#[deprecated(since = "0.8.0", note = "use `FleetConfig` (one builder for all three fleets)")]
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Worker (pipeline) count; clamped to `1..=partitions`.
    pub workers: usize,
    /// Output-channel capacity in mini-batches; producers block when full.
    pub capacity: usize,
    /// Overlap Extract of the next partition with Transform of the current
    /// one.
    pub prefetch: bool,
    /// Failure handling; defaults to [`RetryPolicy::fail_fast`].
    pub recovery: RetryPolicy,
}

#[allow(deprecated)]
impl StreamConfig {
    /// `workers` pipelines over a `capacity`-bounded channel, prefetch on,
    /// fail-fast failure handling.
    #[must_use]
    pub fn new(workers: usize, capacity: usize) -> Self {
        StreamConfig { workers, capacity, prefetch: true, recovery: RetryPolicy::fail_fast() }
    }

    /// Disables the Extract prefetch thread (ablation switch).
    #[must_use]
    pub fn without_prefetch(mut self) -> Self {
        self.prefetch = false;
        self
    }

    /// Sets the failure-handling policy.
    #[must_use]
    pub fn with_recovery(mut self, recovery: RetryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// The equivalent [`FleetConfig`].
    #[must_use]
    pub fn to_fleet(&self) -> FleetConfig {
        let mut config = FleetConfig::new(self.workers, self.capacity);
        config.prefetch = self.prefetch;
        config.recovery = self.recovery.clone();
        config
    }
}

/// One mini-batch as it leaves the pipeline.
#[derive(Debug)]
pub struct StreamedBatch {
    /// Position of the source partition in the input slice.
    pub partition: usize,
    /// Row group within the partition this batch was decoded from. Fleets
    /// that preprocess whole partitions at a time report group `0`; the
    /// shuffled random-access stream reports the actual `PSTOCOL4` row
    /// group index.
    pub group: usize,
    /// Storage device the partition lives on.
    pub device: usize,
    /// True when the partition was claimed off the producing worker's home
    /// device (cross-device steal).
    pub stolen: bool,
    /// The preprocessed mini-batch.
    pub batch: MiniBatch,
    /// Per-stage wall-clock timings for this partition.
    pub timings: StageTimings,
    /// Producer-side delivery time, measured from stream start: stamped
    /// when the finished batch is handed to the (possibly full) output
    /// channel — the *supply* process, before consumer back-pressure.
    /// Consecutive arrivals give the measured inter-arrival process that
    /// drives the pipeline simulation
    /// (`presto_core::pipeline::simulate_measured`, which applies queue
    /// back-pressure itself); stamping at the consumer instead would fold
    /// the consumer's own pacing into the trace and make the calibration
    /// tautological.
    pub arrived: Duration,
    /// Extract attempts this batch took (1 = first try succeeded).
    pub attempts: u32,
    /// True when the batch was produced by the host failover path after
    /// its home ISP device was quarantined (always false on the host
    /// fleet, which is the fallback path).
    pub via_failover: bool,
}

/// Load observed on one storage device during a streaming run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceLoad {
    /// Device id (`Partition::device`).
    pub device: usize,
    /// Partitions resident on the device.
    pub partitions: usize,
    /// Peak simultaneously in-flight Extracts (claim until the projected
    /// reads + decode finish — the window the device is actually busy).
    /// Values above 1 mean workers contended for the device.
    pub max_in_flight: usize,
    /// Partitions taken from this device by workers homed elsewhere.
    pub stolen_from: usize,
}

/// Per-device partition queues with affine claiming and cross-device
/// stealing.
#[derive(Debug)]
struct DeviceQueues {
    /// Sorted distinct device ids.
    devices: Vec<usize>,
    /// Slice positions per device slot, in partition order.
    queues: Vec<Vec<usize>>,
    /// Next unclaimed entry per device slot.
    cursors: Vec<AtomicUsize>,
    in_flight: Vec<AtomicUsize>,
    max_in_flight: Vec<AtomicUsize>,
    stolen_from: Vec<AtomicUsize>,
}

/// A claimed partition: slice position plus the bookkeeping needed to
/// release the device when the batch is delivered.
#[derive(Debug, Clone, Copy)]
struct Claim {
    pos: usize,
    device_slot: usize,
    stolen: bool,
}

impl DeviceQueues {
    fn new(partitions: &[Partition]) -> Self {
        let mut devices: Vec<usize> = partitions.iter().map(|p| p.device).collect();
        devices.sort_unstable();
        devices.dedup();
        if devices.is_empty() {
            devices.push(0);
        }
        let mut queues: Vec<Vec<usize>> = vec![Vec::new(); devices.len()];
        for (pos, p) in partitions.iter().enumerate() {
            let slot = devices.binary_search(&p.device).expect("device listed");
            queues[slot].push(pos);
        }
        let n = devices.len();
        DeviceQueues {
            devices,
            queues,
            cursors: (0..n).map(|_| AtomicUsize::new(0)).collect(),
            in_flight: (0..n).map(|_| AtomicUsize::new(0)).collect(),
            max_in_flight: (0..n).map(|_| AtomicUsize::new(0)).collect(),
            stolen_from: (0..n).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    fn slots(&self) -> usize {
        self.devices.len()
    }

    /// Claims the next partition for a worker homed on `home`: the home
    /// queue first, then the other devices round-robin (a steal).
    fn claim(&self, home: usize) -> Option<Claim> {
        let n = self.slots();
        for k in 0..n {
            let slot = (home + k) % n;
            let idx = self.cursors[slot].fetch_add(1, Ordering::Relaxed);
            if let Some(&pos) = self.queues[slot].get(idx) {
                let now = self.in_flight[slot].fetch_add(1, Ordering::Relaxed) + 1;
                self.max_in_flight[slot].fetch_max(now, Ordering::Relaxed);
                let stolen = k != 0;
                if stolen {
                    self.stolen_from[slot].fetch_add(1, Ordering::Relaxed);
                }
                return Some(Claim { pos, device_slot: slot, stolen });
            }
        }
        None
    }

    fn release(&self, claim: Claim) {
        self.in_flight[claim.device_slot].fetch_sub(1, Ordering::Relaxed);
    }

    fn report(&self) -> Vec<DeviceLoad> {
        self.devices
            .iter()
            .enumerate()
            .map(|(slot, &device)| DeviceLoad {
                device,
                partitions: self.queues[slot].len(),
                max_in_flight: self.max_in_flight[slot].load(Ordering::Relaxed),
                stolen_from: self.stolen_from[slot].load(Ordering::Relaxed),
            })
            .collect()
    }
}

/// State shared by every worker of one streaming run.
#[derive(Debug)]
struct SharedRun {
    plan: PreprocessPlan,
    partitions: Vec<Partition>,
    queues: DeviceQueues,
    /// Recovery policy enforcement and bookkeeping (retries, quarantine,
    /// stragglers, the event log behind [`RunReport`]).
    tracker: RecoveryTracker,
    /// Raised on a fail-fast error (and on consumer drop); producers
    /// observe it between partitions.
    stop: AtomicBool,
    /// Partitions fully preprocessed (before channel delivery).
    completed: AtomicUsize,
    /// Stream start; origin of every [`StreamedBatch::arrived`] stamp.
    started: Instant,
}

type StreamItem = Result<StreamedBatch, PreprocessError>;

/// Streams `partitions` through `workers` preprocessing pipelines with
/// Extract prefetch on; see [`BatchStream::spawn`].
#[deprecated(since = "0.8.0", note = "use `BatchStream::spawn` or `Fleet::Host.spawn`")]
#[must_use]
pub fn stream_workers(
    plan: &PreprocessPlan,
    partitions: &[Partition],
    workers: usize,
    capacity: usize,
) -> BatchStream {
    BatchStream::spawn(plan, partitions, &FleetConfig::new(workers, capacity))
}

/// Starts a streaming run from a pre-unification [`StreamConfig`]; see
/// [`BatchStream::spawn`].
#[deprecated(since = "0.8.0", note = "use `BatchStream::spawn` or `Fleet::Host.spawn`")]
#[allow(deprecated)]
#[must_use]
pub fn stream_workers_with(
    plan: &PreprocessPlan,
    partitions: &[Partition],
    config: &StreamConfig,
) -> BatchStream {
    BatchStream::spawn(plan, partitions, &config.to_fleet())
}

fn spawn_named(name: String, body: impl FnOnce() + Send + 'static) -> JoinHandle<()> {
    std::thread::Builder::new().name(name).spawn(body).expect("spawn stream worker")
}

/// An extracted-but-not-yet-transformed partition.
struct StagedExtract {
    batch: RowBatch,
    extract: Duration,
    attempts: u32,
}

/// The tagged error a partition gets when its device is already
/// quarantined at claim time: no attempt is made, but the partition is
/// never dropped silently.
fn quarantined_error(device: usize) -> PreprocessError {
    PreprocessError::Extract(ColumnarError::Io {
        detail: format!("device {device} quarantined (circuit breaker open)"),
    })
}

/// Runs the Extract attempt loop for one claimed partition: retry with
/// capped exponential backoff on retryable errors, straggler accounting
/// per attempt, and a consecutive-failure circuit breaker per device.
/// Returns the extraction result plus the number of attempts consumed.
///
/// Retries stop when the error is non-retryable, the attempt budget is
/// exhausted, the device trips (or already tripped) quarantine, or the
/// fleet is stopping.
fn attempt_extract(
    shared: &SharedRun,
    claim: Claim,
    scratch: &mut ReadScratch,
) -> (Result<(RowBatch, Duration), PreprocessError>, u32) {
    let partition = &shared.partitions[claim.pos];
    let slot = shared.tracker.slot_of(partition.device);
    if shared.tracker.is_quarantined(slot) {
        return (Err(quarantined_error(partition.device)), 0);
    }
    let policy = shared.tracker.policy();
    let mut attempt = 1u32;
    loop {
        let t0 = Instant::now();
        let result = extract_partition_with(&shared.plan, partition.blob.clone(), scratch);
        shared.tracker.check_straggler(slot, claim.pos, t0.elapsed());
        match result {
            Ok(extracted) => return (Ok(extracted), attempt),
            Err(e) => {
                shared.tracker.note_fault(slot, claim.pos);
                let retry = e.is_retryable()
                    && attempt < policy.max_attempts
                    && !shared.tracker.is_quarantined(slot)
                    && !shared.stop.load(Ordering::Relaxed);
                if !retry {
                    return (Err(e), attempt);
                }
                attempt += 1;
                let backoff = shared.tracker.note_retry(slot, claim.pos, attempt);
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
            }
        }
    }
}

/// Prefetcher body: claim → Extract (with retries) → hand off.
///
/// The double buffering is at the *batch* level: the one-slot `stage_tx`
/// holds one fully extracted (owned) batch while this thread reads the
/// next, so each worker keeps exactly two partitions in flight — one
/// transforming, one extracting. Extracts here are strictly sequential, so
/// a single recycled `ReadScratch` suffices for chunk staging (the
/// `RowBatch` handed off owns its decoded columns and never borrows it).
fn prefetch_loop(
    shared: Arc<SharedRun>,
    home: usize,
    stage_tx: Sender<(Claim, Result<StagedExtract, PreprocessError>)>,
) -> impl FnOnce() + Send + 'static {
    move || {
        let mut scratch = ReadScratch::new();
        while !shared.stop.load(Ordering::Relaxed) {
            let Some(claim) = shared.queues.claim(home) else { break };
            let (extracted, attempts) = attempt_extract(&shared, claim, &mut scratch);
            let result =
                extracted.map(|(batch, extract)| StagedExtract { batch, extract, attempts });
            // The device is done with this partition once Extract returns.
            shared.queues.release(claim);
            let failed = result.is_err();
            if stage_tx.send((claim, result)).is_err()
                || (failed && shared.tracker.policy().fail_fast)
            {
                break;
            }
        }
    }
}

/// Transform-worker body for the prefetch pipeline: staged batch →
/// Transform + format → consumer channel.
fn transform_loop(
    shared: Arc<SharedRun>,
    stage_rx: Receiver<(Claim, Result<StagedExtract, PreprocessError>)>,
    tx: Sender<StreamItem>,
) -> impl FnOnce() + Send + 'static {
    move || {
        while let Ok((claim, staged)) = stage_rx.recv() {
            let mut attempts = 0u32;
            let produced = staged.and_then(|s| {
                attempts = s.attempts;
                let (batch, mut timings) = preprocess_batch_owned(&shared.plan, s.batch)?;
                timings.extract = s.extract;
                Ok((batch, timings))
            });
            if !deliver(&shared, &tx, claim, produced, attempts.max(1)) {
                break;
            }
        }
    }
}

/// Fused worker body (prefetch off): claim → full pipeline → consumer.
fn fused_loop(
    shared: Arc<SharedRun>,
    home: usize,
    tx: Sender<StreamItem>,
) -> impl FnOnce() + Send + 'static {
    move || {
        let mut scratch = ScratchSpace::new();
        while !shared.stop.load(Ordering::Relaxed) {
            let Some(claim) = shared.queues.claim(home) else { break };
            // Same split as the prefetch pipeline (Extract, then owned
            // Transform) so the device in-flight window means the same
            // thing in both modes.
            let (extracted, attempts) = attempt_extract(&shared, claim, scratch.read_scratch());
            shared.queues.release(claim);
            let produced = extracted.and_then(|(batch, extract)| {
                let (mb, mut timings) = preprocess_batch_owned(&shared.plan, batch)?;
                timings.extract = extract;
                Ok((mb, timings))
            });
            if !deliver(&shared, &tx, claim, produced, attempts.max(1)) {
                break;
            }
        }
    }
}

/// Forwards the result to the consumer; returns false when the worker
/// should stop (fail-fast error produced or consumer gone). The device
/// claim has already been released at the end of Extract. Every error is
/// tagged with its failure site ([`PreprocessError::At`]) before delivery.
fn deliver(
    shared: &SharedRun,
    tx: &Sender<StreamItem>,
    claim: Claim,
    produced: Result<(MiniBatch, StageTimings), PreprocessError>,
    attempts: u32,
) -> bool {
    let partition = &shared.partitions[claim.pos];
    let slot = shared.tracker.slot_of(partition.device);
    match produced {
        Ok((batch, timings)) => {
            shared.completed.fetch_add(1, Ordering::Relaxed);
            shared.tracker.note_delivered(slot, claim.pos, false);
            let item = StreamedBatch {
                partition: claim.pos,
                group: 0,
                device: partition.device,
                stolen: claim.stolen,
                batch,
                timings,
                // Stamped at delivery (before a possibly blocking send):
                // the supply process, unthrottled by the consumer.
                arrived: shared.started.elapsed(),
                attempts,
                via_failover: false,
            };
            tx.send(Ok(item)).is_ok()
        }
        Err(e) => {
            shared.tracker.note_failed(slot, claim.pos);
            let e = e.with_location(claim.pos, partition.device);
            if shared.tracker.policy().fail_fast {
                // Raise the stop flag *before* blocking on the (possibly
                // full) channel, so sibling producers halt within one
                // partition even if the consumer is slow.
                shared.stop.store(true, Ordering::Relaxed);
                let _ = tx.send(Err(e));
                false
            } else {
                // Graceful degradation: surface this partition's error
                // inline and keep streaming the rest.
                tx.send(Err(e)).is_ok()
            }
        }
    }
}

/// Inter-arrival gaps computed from a drained stream's
/// [`StreamedBatch::arrived`] delivery stamps (receive order; producers
/// racing into the channel can invert neighboring stamps, which saturates
/// to a zero gap). This is the measured supply process
/// `presto_core::pipeline::simulate_measured` replays to calibrate the
/// trainer simulation against the real executor.
#[must_use]
pub fn inter_arrivals(arrivals: &[Duration]) -> Vec<Duration> {
    arrivals.windows(2).map(|w| w[1].saturating_sub(w[0])).collect()
}

/// The consumer's end of a streaming run: an iterator of
/// `Result<StreamedBatch, PreprocessError>` in completion order.
///
/// Dropping the stream stops the producers (stop flag + channel disconnect)
/// and joins every worker thread; no batches leak and nothing deadlocks
/// even when the channel is full.
#[derive(Debug)]
pub struct BatchStream {
    rx: Option<Receiver<StreamItem>>,
    handles: Vec<JoinHandle<()>>,
    shared: Arc<SharedRun>,
    workers: usize,
    capacity: usize,
    prefetch: bool,
}

impl BatchStream {
    /// Starts a host-fleet streaming run and returns the consumer's end of
    /// the pipeline.
    ///
    /// Mini-batches are yielded **as they complete**, tagged with their
    /// partition index; wrap with [`BatchStream::into_ordered`] for
    /// deterministic order. Worker/partition data is snapshotted via O(1)
    /// clones (`MemBlob` shares its bytes), so the stream is `'static` and
    /// outlives the borrowed arguments.
    #[must_use]
    pub fn spawn(
        plan: &PreprocessPlan,
        partitions: &[Partition],
        config: &FleetConfig,
    ) -> BatchStream {
        let workers = config.workers.max(1).min(partitions.len().max(1));
        let capacity = config.capacity.max(1);
        let devices: Vec<usize> = partitions.iter().map(|p| p.device).collect();
        let shared = Arc::new(SharedRun {
            plan: plan.clone(),
            partitions: partitions.to_vec(),
            queues: DeviceQueues::new(partitions),
            tracker: RecoveryTracker::new(config.recovery.clone(), &devices, partitions.len()),
            stop: AtomicBool::new(false),
            completed: AtomicUsize::new(0),
            started: Instant::now(),
        });
        let (tx, rx) = bounded::<StreamItem>(capacity);

        let mut handles = Vec::with_capacity(workers * 2);
        for worker in 0..workers {
            let home = worker % shared.queues.slots();
            if config.prefetch {
                // Pipeline pair: prefetcher extracts partition i+1 while the
                // transform worker processes partition i. The one-slot
                // hand-off bounds each worker to a single extracted batch in
                // flight.
                let (stage_tx, stage_rx) =
                    bounded::<(Claim, Result<StagedExtract, PreprocessError>)>(1);
                handles.push(spawn_named(
                    format!("presto-prefetch-{worker}"),
                    prefetch_loop(Arc::clone(&shared), home, stage_tx),
                ));
                handles.push(spawn_named(
                    format!("presto-stream-{worker}"),
                    transform_loop(Arc::clone(&shared), stage_rx, tx.clone()),
                ));
            } else {
                handles.push(spawn_named(
                    format!("presto-stream-{worker}"),
                    fused_loop(Arc::clone(&shared), home, tx.clone()),
                ));
            }
        }
        drop(tx); // the workers' clones are now the only senders

        BatchStream { rx: Some(rx), handles, shared, workers, capacity, prefetch: config.prefetch }
    }

    /// Consolidated counters ([`StreamStats`]); the host fleet reports no
    /// P2P or boundary traffic.
    #[must_use]
    pub fn stats(&self) -> StreamStats {
        StreamStats {
            workers: self.workers,
            capacity: self.capacity,
            queued: self.queued(),
            completed: self.completed(),
            p2p_bytes: 0,
            boundary_bytes: 0,
            recovery: Some(self.run_report()),
        }
    }

    /// Effective worker count (after clamping).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Effective channel capacity (after clamping).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether Extract prefetch is active.
    #[must_use]
    pub fn prefetch(&self) -> bool {
        self.prefetch
    }

    /// Partitions fully preprocessed so far (producer-side counter; a
    /// consumer can compare it against the partition count to observe
    /// streaming overlap).
    #[must_use]
    pub fn completed(&self) -> usize {
        self.shared.completed.load(Ordering::Relaxed)
    }

    /// Mini-batches currently buffered in the output channel — the
    /// consumer-side queue occupancy at the instant of the call. A trainer
    /// sampling this on every pull builds the queue-occupancy histogram
    /// that shows whether producers ran ahead (queue full) or the consumer
    /// starved (queue empty).
    #[must_use]
    pub fn queued(&self) -> usize {
        self.rx.as_ref().map_or(0, Receiver::len)
    }

    /// Per-device load snapshot (final after the stream is drained).
    #[must_use]
    pub fn device_report(&self) -> Vec<DeviceLoad> {
        self.shared.queues.report()
    }

    /// Recovery-activity snapshot ([`RunReport`]: retries, quarantines,
    /// per-device fault counts, delivery timeline). Final once the stream
    /// is drained; callable mid-stream for live monitoring.
    #[must_use]
    pub fn run_report(&self) -> RunReport {
        self.shared.tracker.report()
    }

    /// Adapts the stream to yield batches in partition order, buffering
    /// out-of-order arrivals; output is bit-identical to serial execution.
    ///
    /// # Semantics after a mid-stream error
    ///
    /// Errors are **not** reordered: an `Err` item is yielded as soon as
    /// the underlying stream produces it, ahead of any buffered
    /// out-of-order batches. Under the fail-fast policy this means every
    /// batch of a partition index *below* the failed one that completed
    /// before the stop is still delivered in order, the error is surfaced
    /// exactly once, and iteration then ends after flushing stragglers —
    /// even with a full (capacity-1) output channel, since dropping or
    /// draining the inner stream disconnects the channel before joining
    /// workers. Under a `fail_fast: false` policy the error is yielded
    /// inline and ordered iteration continues; the failed partition index
    /// is simply skipped by the order cursor when its turn comes (it can
    /// never arrive), which the flush path handles.
    #[must_use]
    pub fn into_ordered(self) -> OrderedBatchStream {
        OrderedBatchStream { inner: self, next_index: 0, pending: BinaryHeap::new() }
    }

    fn join_workers(&mut self) {
        for handle in self.handles.drain(..) {
            if let Err(panic) = handle.join() {
                if !std::thread::panicking() {
                    std::panic::resume_unwind(panic);
                }
            }
        }
    }
}

impl Iterator for BatchStream {
    type Item = StreamItem;

    fn next(&mut self) -> Option<StreamItem> {
        let item = self.rx.as_ref().and_then(|rx| rx.recv().ok());
        match item {
            Some(item) => Some(item),
            None => {
                // All senders gone: the run is over; reap the threads.
                self.join_workers();
                None
            }
        }
    }
}

impl Drop for BatchStream {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        // Disconnect the channel so producers blocked on a full queue fail
        // their send and exit instead of deadlocking.
        self.rx = None;
        self.join_workers();
    }
}

/// Min-heap entry ordered by partition index.
struct ByPartition(StreamedBatch);

impl PartialEq for ByPartition {
    fn eq(&self, other: &Self) -> bool {
        self.0.partition == other.0.partition
    }
}
impl Eq for ByPartition {}
impl PartialOrd for ByPartition {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ByPartition {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partition.cmp(&other.0.partition)
    }
}

/// [`BatchStream`] adapter restoring partition order (see
/// [`BatchStream::into_ordered`]).
pub struct OrderedBatchStream {
    inner: BatchStream,
    next_index: usize,
    pending: BinaryHeap<Reverse<ByPartition>>,
}

impl OrderedBatchStream {
    /// The underlying completion-order stream (for its accessors).
    #[must_use]
    pub fn get_ref(&self) -> &BatchStream {
        &self.inner
    }
}

impl Iterator for OrderedBatchStream {
    type Item = StreamItem;

    fn next(&mut self) -> Option<StreamItem> {
        loop {
            if let Some(Reverse(head)) = self.pending.peek() {
                if head.0.partition == self.next_index {
                    let Reverse(ByPartition(batch)) =
                        self.pending.pop().expect("peeked entry exists");
                    self.next_index += 1;
                    return Some(Ok(batch));
                }
            }
            match self.inner.next() {
                Some(Ok(batch)) if batch.partition == self.next_index => {
                    self.next_index += 1;
                    return Some(Ok(batch));
                }
                Some(Ok(batch)) => self.pending.push(Reverse(ByPartition(batch))),
                Some(Err(e)) => return Some(Err(e)),
                None => {
                    // Stream over: flush whatever arrived out of order
                    // (only reachable with gaps after an early stop).
                    let Reverse(ByPartition(batch)) = self.pending.pop()?;
                    self.next_index = batch.partition + 1;
                    return Some(Ok(batch));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_datagen::{generate_batch, write_partition, Dataset, RmConfig};

    fn tiny_config(rows: usize) -> RmConfig {
        let mut c = RmConfig::rm1();
        c.batch_size = rows;
        c
    }

    fn dataset(partitions: usize, rows: usize, devices: usize) -> (RmConfig, Dataset) {
        let c = tiny_config(rows);
        let ds = Dataset::generate(&c, partitions, rows, devices, 7).unwrap();
        (c, ds)
    }

    #[test]
    fn streaming_matches_serial_in_order() {
        let (c, ds) = dataset(6, 32, 2);
        let plan = PreprocessPlan::from_config(&c, 1).unwrap();
        let serial: Vec<MiniBatch> = ds
            .partitions()
            .iter()
            .map(|p| crate::executor::preprocess_partition(&plan, p.blob.clone()).unwrap().0)
            .collect();
        for prefetch in [true, false] {
            let mut config = FleetConfig::new(3, 2);
            config.prefetch = prefetch;
            let streamed: Vec<MiniBatch> = BatchStream::spawn(&plan, ds.partitions(), &config)
                .into_ordered()
                .map(|item| item.unwrap().batch)
                .collect();
            assert_eq!(streamed, serial, "prefetch={prefetch}");
        }
    }

    #[test]
    fn first_batch_arrives_before_last_partition_finishes() {
        // Partition 0 is ~64x the others *and* sits behind an emulated
        // slow device, so its worker provably sleeps while the small
        // partitions stream past it — a small partition must reach the
        // consumer while the big one is still in flight, the defining
        // property of streaming execution. (The latency, not just the row
        // count, is what makes this deterministic on a loaded single-core
        // runner: raw size alone races the OS scheduler.)
        let c = tiny_config(32);
        let plan = PreprocessPlan::from_config(&c, 1).unwrap();
        let mut partitions = Vec::new();
        for (index, rows) in [2048usize, 32, 32, 32].into_iter().enumerate() {
            let batch = generate_batch(&c, rows, index as u64 + 1);
            let mut blob = write_partition(&batch).unwrap();
            if index == 0 {
                blob = blob.with_read_latency(std::time::Duration::from_millis(2));
            }
            partitions.push(Partition { index, device: index % 2, rows, blob });
        }
        let mut stream = BatchStream::spawn(&plan, &partitions, &FleetConfig::new(2, 4));
        let first = stream.next().expect("stream yields").expect("no error");
        assert!(
            stream.completed() < partitions.len(),
            "first batch must arrive while other partitions are unfinished"
        );
        assert_ne!(first.partition, 0, "the slow partition cannot be first");
        // Drain the rest: all four partitions arrive exactly once.
        let mut seen: Vec<usize> = stream.by_ref().map(|i| i.unwrap().partition).collect();
        seen.push(first.partition);
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn device_affinity_prefers_home_queues_and_steals_when_drained() {
        let (c, ds) = dataset(8, 16, 4);
        let plan = PreprocessPlan::from_config(&c, 1).unwrap();
        // One worker homed on device 0 must still process everything —
        // 2 affine claims + 6 steals.
        let stream =
            BatchStream::spawn(&plan, ds.partitions(), &FleetConfig::new(1, 8).without_prefetch());
        let mut stolen = 0usize;
        let mut total = 0usize;
        let report = {
            let mut s = stream;
            for item in s.by_ref() {
                let b = item.unwrap();
                total += 1;
                stolen += usize::from(b.stolen);
            }
            s.device_report()
        };
        assert_eq!(total, 8);
        assert_eq!(stolen, 6);
        assert_eq!(report.len(), 4);
        assert_eq!(report.iter().map(|d| d.partitions).sum::<usize>(), 8);
        assert_eq!(report[0].stolen_from, 0, "home device is not stolen from");
        assert_eq!(report[1].stolen_from + report[2].stolen_from + report[3].stolen_from, 6);
    }

    #[test]
    fn contention_is_visible_when_workers_outnumber_devices() {
        let (c, ds) = dataset(8, 24, 1);
        let plan = PreprocessPlan::from_config(&c, 1).unwrap();
        // Emulated device latency keeps each Extract on the device long
        // enough that concurrent claims genuinely overlap, host-independent.
        let partitions: Vec<Partition> = ds
            .partitions()
            .iter()
            .map(|p| Partition {
                index: p.index,
                device: p.device,
                rows: p.rows,
                blob: p.blob.clone().with_read_latency(Duration::from_micros(200)),
            })
            .collect();
        let mut stream = BatchStream::spawn(&plan, &partitions, &FleetConfig::new(4, 16));
        let n = stream.by_ref().filter(|i| i.is_ok()).count();
        assert_eq!(n, 8);
        let report = stream.device_report();
        assert_eq!(report.len(), 1);
        assert!(
            report[0].max_in_flight > 1,
            "4 workers on 1 device must contend (max_in_flight {})",
            report[0].max_in_flight
        );
    }

    #[test]
    fn ordered_adapter_restores_partition_order() {
        let (c, ds) = dataset(9, 16, 3);
        let plan = PreprocessPlan::from_config(&c, 1).unwrap();
        let order: Vec<usize> = BatchStream::spawn(&plan, ds.partitions(), &FleetConfig::new(3, 2))
            .into_ordered()
            .map(|i| i.unwrap().partition)
            .collect();
        assert_eq!(order, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn corrupt_partition_surfaces_error_and_stops_producers_promptly() {
        let (c, ds) = dataset(8, 16, 1);
        let plan = PreprocessPlan::from_config(&c, 1).unwrap();
        let mut partitions = ds.partitions().to_vec();
        // Truncate partition 2's blob mid-file.
        let bytes = partitions[2].blob.as_bytes().to_vec();
        partitions[2].blob = presto_columnar::MemBlob::new(bytes[..bytes.len() / 3].to_vec());
        // One worker, no prefetch: claims run 0, 1, 2, ... deterministically.
        let config = FleetConfig::new(1, 1).without_prefetch();
        let mut stream = BatchStream::spawn(&plan, &partitions, &config);
        let mut ok = 0usize;
        let mut errors = 0usize;
        for item in stream.by_ref() {
            match item {
                Ok(b) => {
                    assert!(b.partition < 2, "nothing after the corrupt partition");
                    ok += 1;
                }
                Err(e) => {
                    assert!(matches!(e.root(), PreprocessError::Extract(_)), "{e}");
                    assert_eq!(e.partition(), Some(2), "error carries the failing partition");
                    assert_eq!(e.device(), Some(partitions[2].device), "and its device");
                    errors += 1;
                }
            }
        }
        assert_eq!((ok, errors), (2, 1), "batches before the error, then the error, then end");
        assert_eq!(
            stream.completed(),
            2,
            "the stop flag must halt the producer within one partition"
        );
    }

    #[test]
    fn error_send_does_not_deadlock_on_a_full_channel() {
        let (c, ds) = dataset(6, 16, 1);
        let plan = PreprocessPlan::from_config(&c, 1).unwrap();
        let mut partitions = ds.partitions().to_vec();
        let bytes = partitions[3].blob.as_bytes().to_vec();
        partitions[3].blob = presto_columnar::MemBlob::new(bytes[..bytes.len() / 2].to_vec());
        // Capacity-1 channel that the consumer never drains past the first
        // item: the error producer must not wedge the run.
        let config = FleetConfig::new(2, 1);
        let mut stream = BatchStream::spawn(&plan, &partitions, &config);
        let _first = stream.next().unwrap();
        drop(stream); // joins workers; a deadlock would hang the test here
    }

    #[test]
    fn capacity_one_applies_back_pressure() {
        let (c, ds) = dataset(8, 16, 1);
        let plan = PreprocessPlan::from_config(&c, 1).unwrap();
        let config = FleetConfig::new(1, 1).without_prefetch();
        let mut stream = BatchStream::spawn(&plan, ds.partitions(), &config);
        let mut taken = 0usize;
        while let Some(item) = stream.next() {
            item.unwrap();
            taken += 1;
            // With one producer and capacity 1, the pipeline can never run
            // more than (queued = 1) + (blocked in send = 1) ahead of the
            // consumer, no matter how slowly we drain.
            assert!(
                stream.completed() <= taken + 2,
                "producer ran ahead: completed {} after {} taken",
                stream.completed(),
                taken
            );
            std::thread::yield_now();
        }
        assert_eq!(taken, 8);
    }

    #[test]
    fn inter_arrival_helper_computes_gaps() {
        let stamps = [10u64, 15, 15, 40].map(Duration::from_millis);
        assert_eq!(inter_arrivals(&stamps), [5u64, 0, 25].map(Duration::from_millis).to_vec());
        assert!(inter_arrivals(&[]).is_empty());
        assert!(inter_arrivals(&stamps[..1]).is_empty());
    }

    #[test]
    fn dropping_a_full_stream_does_not_deadlock_or_leak_threads() {
        let (c, ds) = dataset(10, 16, 2);
        let plan = PreprocessPlan::from_config(&c, 1).unwrap();
        let mut stream = BatchStream::spawn(&plan, ds.partitions(), &FleetConfig::new(2, 1));
        // Take one batch, then walk away with the capacity-1 channel full
        // and producers blocked mid-send.
        let _ = stream.next().unwrap().unwrap();
        drop(stream); // must join every worker without hanging
    }

    #[test]
    fn ordered_stream_after_midrun_error_delivers_prefix_then_error_once() {
        let (c, ds) = dataset(6, 16, 1);
        let plan = PreprocessPlan::from_config(&c, 1).unwrap();
        let mut partitions = ds.partitions().to_vec();
        let bytes = partitions[3].blob.as_bytes().to_vec();
        partitions[3].blob = presto_columnar::MemBlob::new(bytes[..bytes.len() / 2].to_vec());
        // One worker, no prefetch, capacity 1 (the worst case for a
        // deadlock): claims run 0, 1, 2, 3 deterministically.
        let config = FleetConfig::new(1, 1).without_prefetch();
        let mut delivered = Vec::new();
        let mut errors = 0usize;
        for item in BatchStream::spawn(&plan, &partitions, &config).into_ordered() {
            match item {
                Ok(b) => delivered.push(b.partition),
                Err(e) => {
                    errors += 1;
                    assert_eq!(e.partition(), Some(3));
                }
            }
        }
        assert_eq!(delivered, vec![0, 1, 2], "prefix delivered in order");
        assert_eq!(errors, 1, "error surfaced exactly once");
    }

    #[test]
    fn transient_faults_are_retried_to_a_bit_identical_stream() {
        let (c, ds) = dataset(6, 24, 2);
        let plan = PreprocessPlan::from_config(&c, 1).unwrap();
        let serial: Vec<MiniBatch> = ds
            .partitions()
            .iter()
            .map(|p| crate::executor::preprocess_partition(&plan, p.blob.clone()).unwrap().0)
            .collect();
        // Arm every partition with a per-read transient fault rate low
        // enough that a whole-partition attempt (~40 column reads) clears
        // within the generous attempt budget — each retry consumes fresh
        // read indices, so faults eventually miss. Quarantine off:
        // host-fleet faults here are random across devices, not a dying
        // device.
        let injector = presto_columnar::FaultPlan::new(1234).with_transient_rate(0.1).arm();
        let partitions: Vec<Partition> = ds
            .partitions()
            .iter()
            .map(|p| Partition {
                index: p.index,
                device: p.device,
                rows: p.rows,
                blob: p.blob.clone().with_faults(&injector, p.device, p.index),
            })
            .collect();
        let recovery = RetryPolicy::recover()
            .with_max_attempts(2000)
            .with_backoff(Duration::ZERO, Duration::ZERO)
            .with_quarantine_after(0);
        let config = FleetConfig::new(3, 2).with_recovery(recovery);
        let mut s = BatchStream::spawn(&plan, &partitions, &config).into_ordered();
        let streamed: Vec<MiniBatch> = s.by_ref().map(|i| i.unwrap().batch).collect();
        let report = s.get_ref().run_report();
        assert_eq!(streamed, serial, "recovered stream must be bit-identical");
        assert!(injector.stats().transient > 0, "the plan must actually have injected faults");
        assert_eq!(report.retries, report.faults, "every fault was retried");
        assert!(report.retries > 0);
        assert!(report.failed_partitions.is_empty());
        assert_eq!(report.delivered, 6);
    }

    #[test]
    fn corrupt_pages_are_caught_by_crc_and_retried_from_pristine_media() {
        let (c, ds) = dataset(4, 16, 1);
        let plan = PreprocessPlan::from_config(&c, 1).unwrap();
        let injector = presto_columnar::FaultPlan::new(7).with_corrupt_rate(0.05).arm();
        let partitions: Vec<Partition> = ds
            .partitions()
            .iter()
            .map(|p| Partition {
                index: p.index,
                device: p.device,
                rows: p.rows,
                blob: p.blob.clone().with_faults(&injector, p.device, p.index),
            })
            .collect();
        let recovery = RetryPolicy::recover()
            .with_max_attempts(2000)
            .with_backoff(Duration::ZERO, Duration::ZERO)
            .with_quarantine_after(0);
        let config = FleetConfig::new(2, 2).with_recovery(recovery);
        let ok = BatchStream::spawn(&plan, &partitions, &config).filter(|i| i.is_ok()).count();
        assert_eq!(ok, 4, "corruption is transient from pristine media: all must deliver");
        assert!(injector.stats().corrupt > 0, "corruption must actually have been injected");
    }

    #[test]
    fn dead_device_is_quarantined_and_its_partitions_fail_loudly() {
        let (c, ds) = dataset(8, 16, 2);
        let plan = PreprocessPlan::from_config(&c, 1).unwrap();
        // Device 1 dies immediately; device 0 is healthy.
        let injector = presto_columnar::FaultPlan::new(5).with_device_death(1, 0).arm();
        let partitions: Vec<Partition> = ds
            .partitions()
            .iter()
            .map(|p| Partition {
                index: p.index,
                device: p.device,
                rows: p.rows,
                blob: p.blob.clone().with_faults(&injector, p.device, p.index),
            })
            .collect();
        let on_dead: Vec<usize> =
            partitions.iter().filter(|p| p.device == 1).map(|p| p.index).collect();
        let recovery = RetryPolicy::recover()
            .with_max_attempts(2)
            .with_backoff(Duration::ZERO, Duration::ZERO)
            .with_quarantine_after(2);
        let config = FleetConfig::new(2, 4).with_recovery(recovery);
        let mut stream = BatchStream::spawn(&plan, &partitions, &config);
        let mut ok = Vec::new();
        let mut failed = Vec::new();
        for item in stream.by_ref() {
            match item {
                Ok(b) => ok.push(b.partition),
                Err(e) => failed.push(e.partition().expect("provenance")),
            }
        }
        ok.sort_unstable();
        failed.sort_unstable();
        let healthy: Vec<usize> =
            partitions.iter().filter(|p| p.device == 0).map(|p| p.index).collect();
        assert_eq!(ok, healthy, "every healthy-device partition still delivers");
        assert_eq!(failed, on_dead, "every dead-device partition fails loudly");
        let report = stream.run_report();
        let dead_slot = 1; // devices sorted distinct: [0, 1]
        assert!(report.quarantined.contains(&dead_slot), "breaker must trip");
        assert!(report.device_health[dead_slot].quarantined);
        assert_eq!(
            report.delivered as usize + report.failed_partitions.len(),
            report.partitions,
            "nothing dropped silently"
        );
    }

    #[test]
    fn workers_and_capacity_are_clamped() {
        let (c, ds) = dataset(2, 8, 1);
        let plan = PreprocessPlan::from_config(&c, 1).unwrap();
        let stream = BatchStream::spawn(&plan, ds.partitions(), &FleetConfig::new(64, 0));
        assert_eq!(stream.workers(), 2);
        assert_eq!(stream.capacity(), 1);
        assert!(stream.prefetch());
        assert_eq!(stream.count(), 2);
    }

    #[test]
    fn stats_consolidates_the_counters() {
        let (c, ds) = dataset(4, 16, 2);
        let plan = PreprocessPlan::from_config(&c, 1).unwrap();
        let mut stream = BatchStream::spawn(&plan, ds.partitions(), &FleetConfig::new(2, 4));
        let n = stream.by_ref().filter(Result::is_ok).count();
        assert_eq!(n, 4);
        let stats = stream.stats();
        assert_eq!((stats.workers, stats.capacity, stats.completed), (2, 4, 4));
        assert_eq!((stats.p2p_bytes, stats.boundary_bytes), (0, 0));
        let recovery = stats.recovery.expect("host fleet tracks recovery");
        assert_eq!(recovery.delivered, 4);
        assert!(recovery.failed_partitions.is_empty());
    }

    #[test]
    fn fleet_config_split_knobs_mirror_the_shared_ones_by_default() {
        let config = FleetConfig::new(3, 5);
        assert_eq!(config.effective_host_workers(), 3);
        assert_eq!(config.effective_link_capacity(), 5);
        let config = config.with_host_workers(2).with_link_capacity(9);
        assert_eq!(config.effective_host_workers(), 2);
        assert_eq!(config.effective_link_capacity(), 9);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_entry_points_still_spawn_the_same_fleet() {
        let (c, ds) = dataset(3, 16, 1);
        let plan = PreprocessPlan::from_config(&c, 1).unwrap();
        let via_new: Vec<MiniBatch> =
            BatchStream::spawn(&plan, ds.partitions(), &FleetConfig::new(2, 2))
                .into_ordered()
                .map(|i| i.unwrap().batch)
                .collect();
        let via_old: Vec<MiniBatch> = stream_workers(&plan, ds.partitions(), 2, 2)
            .into_ordered()
            .map(|i| i.unwrap().batch)
            .collect();
        let via_config: Vec<MiniBatch> =
            stream_workers_with(&plan, ds.partitions(), &StreamConfig::new(2, 2))
                .into_ordered()
                .map(|i| i.unwrap().batch)
                .collect();
        assert_eq!(via_old, via_new);
        assert_eq!(via_config, via_new);
    }
}
