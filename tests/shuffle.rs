//! Shuffled-epoch determinism suite — the in-process body of CI's
//! `shuffle-determinism` matrix.
//!
//! CI runs this file once per seed in {1, 42, 991217} via
//! `PRESTO_SHUFFLE_SEED` (default 42). The pinned properties:
//!
//! * Same seed ⇒ the same permutation and bit-identical epoch output
//!   across worker counts {1, 4, 8}.
//! * Different seeds ⇒ different permutations.
//! * Resuming from a mid-epoch [`EpochCursor`] is bit-identical to the
//!   uninterrupted run.
//! * After sorting by `(partition, group)`, the shuffled epoch equals the
//!   sequential whole-partition pipeline on RM1, RM3 and the `cleaned`
//!   scenario graph.
//! * Property test: for arbitrary shapes × group sizes (including groups
//!   of one row and groups larger than a partition), every row is
//!   delivered exactly once per epoch.

use presto::core::fleet::Fleet;
use presto::core::pipeline::{Trainer, TrainerConfig};
use presto::datagen::{Dataset, RmConfig};
use presto::ops::graph::PlanGraph;
use presto::ops::{
    epoch_order, epoch_units, preprocess_partition, EpochCursor, FleetConfig, MiniBatch,
    PreprocessPlan, ShuffleSpec, ShuffledStream,
};
use proptest::prelude::*;

/// The CI matrix seed; defaults to 42 for plain `cargo test`.
fn matrix_seed() -> u64 {
    std::env::var("PRESTO_SHUFFLE_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42)
}

fn rm1(rows: usize) -> RmConfig {
    let mut c = RmConfig::rm1();
    c.batch_size = rows;
    c
}

/// Collects a full shuffled epoch as `((partition, group), batch)` pairs.
fn collect_epoch(
    plan: &PreprocessPlan,
    ds: &Dataset,
    spec: ShuffleSpec,
    workers: usize,
) -> Vec<((usize, usize), MiniBatch)> {
    ShuffledStream::spawn(plan, ds.partitions(), spec, &FleetConfig::new(workers, 3))
        .expect("spawns")
        .map(|item| {
            let b = item.expect("no faults injected");
            ((b.partition, b.group), b.batch)
        })
        .collect()
}

#[test]
fn same_seed_is_bit_identical_across_worker_counts() {
    let c = rm1(16);
    let plan = PreprocessPlan::from_config(&c, 1).expect("plan");
    let ds = Dataset::generate_grouped(&c, 3, 48, 2, 9, 16).expect("dataset");
    let spec = ShuffleSpec::new(matrix_seed());
    let reference = collect_epoch(&plan, &ds, spec, 1);
    assert_eq!(reference.len(), 9, "3 partitions x 3 groups");
    for workers in [4usize, 8] {
        let got = collect_epoch(&plan, &ds, spec, workers);
        assert_eq!(got, reference, "workers={workers} must not change the epoch");
    }
}

#[test]
fn different_seeds_draw_different_permutations() {
    let seed = matrix_seed();
    // Permutation-level check over a space where collisions are
    // negligible (48! orderings).
    for other in [seed ^ 1, seed.wrapping_add(1), 991_218] {
        if other == seed {
            continue;
        }
        assert_ne!(epoch_order(48, seed, 0), epoch_order(48, other, 0), "seed {other}");
    }
    // Epoch-level check through the real stream.
    let c = rm1(8);
    let plan = PreprocessPlan::from_config(&c, 1).expect("plan");
    let ds = Dataset::generate_grouped(&c, 4, 24, 2, 5, 8).expect("dataset");
    let a: Vec<_> =
        collect_epoch(&plan, &ds, ShuffleSpec::new(seed), 2).into_iter().map(|(k, _)| k).collect();
    let b: Vec<_> = collect_epoch(&plan, &ds, ShuffleSpec::new(seed.wrapping_add(7)), 2)
        .into_iter()
        .map(|(k, _)| k)
        .collect();
    assert_ne!(a, b, "12 units give a 1/479M collision chance; a match is a bug");
    let mut a_sorted = a.clone();
    let mut b_sorted = b.clone();
    a_sorted.sort_unstable();
    b_sorted.sort_unstable();
    assert_eq!(a_sorted, b_sorted, "both epochs cover the same units");
}

#[test]
fn successive_epochs_reshuffle_without_new_seeds() {
    let seed = matrix_seed();
    let e0 = epoch_order(36, seed, 0);
    let e1 = epoch_order(36, seed, 1);
    assert_ne!(e0, e1);
    // And each is still deterministic.
    assert_eq!(e1, epoch_order(36, seed, 1));
}

#[test]
fn resume_from_cursor_equals_uninterrupted_run() {
    let c = rm1(8);
    let plan = PreprocessPlan::from_config(&c, 1).expect("plan");
    let ds = Dataset::generate_grouped(&c, 4, 32, 2, 3, 8).expect("dataset");
    let spec = ShuffleSpec::new(matrix_seed()).with_epoch(1);
    let full = collect_epoch(&plan, &ds, spec, 3);
    assert_eq!(full.len(), 16);
    for interrupt_at in [1usize, 5, 15] {
        let mut first =
            ShuffledStream::spawn(&plan, ds.partitions(), spec, &FleetConfig::new(3, 2))
                .expect("spawns");
        let head: Vec<_> = first
            .by_ref()
            .take(interrupt_at)
            .map(|i| {
                let b = i.expect("ok");
                ((b.partition, b.group), b.batch)
            })
            .collect();
        let cursor = first.cursor();
        drop(first);
        // Round-trip the cursor through its serialized form, as a real
        // checkpoint would.
        let cursor = EpochCursor::decode(&cursor.encode()).expect("cursor round-trips");
        assert_eq!(cursor.next, interrupt_at as u64);
        let tail: Vec<_> =
            ShuffledStream::resume(&plan, ds.partitions(), cursor, &FleetConfig::new(2, 4))
                .expect("resumes")
                .map(|i| {
                    let b = i.expect("ok");
                    ((b.partition, b.group), b.batch)
                })
                .collect();
        let stitched: Vec<_> = head.into_iter().chain(tail).collect();
        assert_eq!(stitched, full, "interrupt_at={interrupt_at}");
    }
}

/// The three scenario plans of the repo's multi-tenant examples.
fn scenarios() -> Vec<(&'static str, RmConfig, PreprocessPlan)> {
    let rm1 = rm1(16);
    let mut rm3 = RmConfig::rm3();
    rm3.batch_size = 16;
    let cleaned_graph = PlanGraph::cleaned(&rm1, 3).expect("cleaned graph");
    vec![
        ("rm1", rm1.clone(), PreprocessPlan::from_config(&rm1, 1).expect("rm1 plan")),
        ("rm3", rm3.clone(), PreprocessPlan::from_config(&rm3, 1).expect("rm3 plan")),
        (
            "cleaned",
            rm1.clone(),
            PreprocessPlan::compile(cleaned_graph, &rm1).expect("cleaned plan"),
        ),
    ]
}

#[test]
fn shuffled_epoch_matches_sequential_on_all_scenarios() {
    for (name, config, plan) in scenarios() {
        let ds = Dataset::generate_grouped(&config, 3, 40, 2, 11, 16).expect("dataset");
        let mut epoch = collect_epoch(&plan, &ds, ShuffleSpec::new(matrix_seed()), 4);
        epoch.sort_by_key(|(key, _)| *key);
        assert_eq!(epoch.len(), 9, "{name}: 3 partitions x groups [16,16,8]");
        for (pos, p) in ds.partitions().iter().enumerate() {
            let (serial, _) = preprocess_partition(&plan, p.blob.clone()).expect("serial");
            let mut start = 0usize;
            for ((partition, group), batch) in epoch.iter().filter(|((pp, _), _)| *pp == pos) {
                let rows = batch.rows();
                assert_eq!(
                    batch,
                    &serial.slice_rows(start, rows).expect("window"),
                    "{name}: partition {partition} group {group}"
                );
                start += rows;
            }
            assert_eq!(start, serial.rows(), "{name}: partition {pos} fully covered");
        }
    }
}

#[test]
fn trainer_consumes_a_shuffled_fleet_unchanged() {
    let c = rm1(16);
    let plan = PreprocessPlan::from_config(&c, 1).expect("plan");
    let ds = Dataset::generate_grouped(&c, 2, 32, 2, 13, 16).expect("dataset");
    let fleet = Fleet::Shuffled(ShuffleSpec::new(matrix_seed()));
    let source = fleet.spawn(&plan, ds.partitions(), &FleetConfig::new(2, 3));
    let report = Trainer::new(TrainerConfig::instant()).run(source).expect("trains");
    assert_eq!(report.batches, 4, "2 partitions x 2 groups");
    assert_eq!(report.rows, 64);
    assert!(report.stream.recovery.is_some(), "shuffled fleet reports recovery activity");
}

#[test]
fn ungrouped_files_degrade_to_partition_shuffle() {
    // Single-group (v3-style) files still stream: the shuffle space is
    // just partition-granular.
    let c = rm1(16);
    let plan = PreprocessPlan::from_config(&c, 1).expect("plan");
    let ds = Dataset::generate(&c, 5, 16, 2, 3).expect("dataset");
    let units = epoch_units(ds.partitions()).expect("units");
    assert_eq!(units.len(), 5, "one unit per partition");
    assert!(units.iter().all(|u| u.group == 0));
    let epoch = collect_epoch(&plan, &ds, ShuffleSpec::new(matrix_seed()), 2);
    assert_eq!(epoch.len(), 5);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Exactly-once delivery for arbitrary shapes × group sizes, including
    /// groups of one row and groups larger than the partition, with the
    /// sorted epoch bit-identical to the sequential pipeline.
    #[test]
    fn every_row_arrives_exactly_once_per_epoch(
        partitions in 1usize..4,
        rows in 1usize..48,
        group_rows in prop_oneof![
            1usize..2,           // degenerate: per-row groups
            2usize..16,          // typical mini-batch-aligned groups
            64usize..96,         // larger than any partition: one group
        ],
        seed in 0u64..1000,
    ) {
        let c = rm1(rows.clamp(1, 16));
        let ds = Dataset::generate_grouped(&c, partitions, rows, 2, seed ^ 0xa5, group_rows)
            .expect("dataset");
        let plan = PreprocessPlan::from_config(&c, 1).expect("plan");
        let mut epoch = collect_epoch(&plan, &ds, ShuffleSpec::new(seed), 4);
        // Every unit exactly once.
        let mut keys: Vec<_> = epoch.iter().map(|(k, _)| *k).collect();
        let unique: std::collections::HashSet<_> = keys.iter().copied().collect();
        prop_assert_eq!(unique.len(), keys.len());
        keys.sort_unstable();
        let expected_groups_per_partition = rows.div_ceil(group_rows);
        prop_assert_eq!(keys.len(), partitions * expected_groups_per_partition);
        // Every row exactly once, in sequential order once sorted.
        epoch.sort_by_key(|(k, _)| *k);
        for pos in 0..partitions {
            let (serial, _) =
                preprocess_partition(&plan, ds.partitions()[pos].blob.clone()).expect("serial");
            let mut start = 0usize;
            for (_, batch) in epoch.iter().filter(|((pp, _), _)| *pp == pos) {
                let window = serial.slice_rows(start, batch.rows()).expect("window");
                prop_assert_eq!(batch, &window);
                start += batch.rows();
            }
            prop_assert_eq!(start, rows);
        }
    }
}
