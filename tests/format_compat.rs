//! Format-version compatibility and encoding-matrix pinning.
//!
//! * A checked-in `PSTOCOL2` fixture (written by the PR 3 code base) must
//!   keep decoding bit-identically under the current reader, all the way
//!   through preprocessing.
//! * A freshly written `PSTOCOL3` file (the previous format, emitted via
//!   [`FileWriter::with_format_version`]) must read back through the v4
//!   reader with the same preprocessing fingerprint — the cross-version
//!   leg of CI's `shuffle-determinism` job.
//! * Files written with every forced encoding must decode to the same
//!   arrays and preprocess to the same mini-batch as the default policy —
//!   the in-process counterpart of CI's `PRESTO_FORCE_ENCODING` matrix.

use presto::columnar::{
    Compression, Encoding, FileReader, FileWriter, FormatVersion, MemBlob, WritePolicy, MAGIC,
    MAGIC_V2, MAGIC_V3,
};
use presto::datagen::{generate_batch, write_partition, RmConfig};
use presto::ops::{preprocess_partition, MiniBatch, PreprocessPlan};

const V2_FIXTURE: &[u8] = include_bytes!("data/v2_rm1_200rows_seed42.pstocol");

/// The fixture's generation parameters (fixed forever).
fn fixture_config() -> RmConfig {
    let mut config = RmConfig::rm1();
    config.batch_size = 200;
    config
}

/// FNV-1a over every field of a mini-batch, the fingerprint recorded when
/// the v2 fixture was generated.
fn fingerprint(mb: &MiniBatch) -> u64 {
    let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |b: u64| {
        acc ^= b;
        acc = acc.wrapping_mul(0x100_0000_01b3);
    };
    for &l in mb.labels() {
        mix(l as u64);
    }
    for f in mb.sparse() {
        for &v in &f.values {
            mix(v as u64);
        }
        for &o in &f.offsets {
            mix(u64::from(o));
        }
    }
    for r in 0..mb.rows() {
        for &d in mb.dense().row(r) {
            mix(u64::from(d.to_bits()));
        }
    }
    acc
}

#[test]
fn v2_fixture_still_opens_and_decodes() {
    assert_eq!(&V2_FIXTURE[..8], MAGIC_V2, "fixture must really be a v2 file");
    let reader = FileReader::open(MemBlob::new(V2_FIXTURE.to_vec())).expect("v2 file opens");
    let config = fixture_config();
    let expected = generate_batch(&config, 200, 42);
    assert_eq!(reader.read_row_group(0).expect("decodes"), expected.columns());
}

#[test]
#[cfg_attr(feature = "fast-math", ignore = "fast-math ln_1p is not bit-identical by design")]
fn v2_fixture_preprocesses_bit_identically() {
    // Fingerprint recorded by the PR 3 code base when the fixture was
    // written: decode + full preprocessing must not have changed a bit.
    // (The fast-math feature intentionally relaxes dense-normalization
    // bit-identity to ≤ 8 ULP, so this pin only holds in default builds.)
    let plan = PreprocessPlan::from_config(&fixture_config(), 1).expect("plan");
    let (mb, _) =
        preprocess_partition(&plan, MemBlob::new(V2_FIXTURE.to_vec())).expect("preprocesses");
    assert_eq!(fingerprint(&mb), 0x8c2b_dfa5_d504_2341);
}

#[test]
fn v4_writer_output_matches_v2_content() {
    let config = fixture_config();
    let batch = generate_batch(&config, 200, 42);
    let blob = write_partition(&batch).expect("writes");
    assert_eq!(&blob.as_bytes()[..8], MAGIC, "new files carry the v4 magic");
    let v4 = FileReader::open(blob).expect("opens");
    assert_eq!(v4.version(), FormatVersion::V4);
    let v2 = FileReader::open(MemBlob::new(V2_FIXTURE.to_vec())).expect("opens");
    assert_eq!(v2.version(), FormatVersion::V2);
    assert_eq!(
        v4.read_row_group(0).expect("v4 decodes"),
        v2.read_row_group(0).expect("v2 decodes"),
    );
}

#[test]
fn fresh_v3_file_reads_through_v4_reader() {
    // The previous on-disk version, written by today's writer in
    // compatibility mode, must round-trip through the current reader with
    // unchanged content — the "one release back" guarantee.
    let config = fixture_config();
    let batch = generate_batch(&config, 200, 42);
    let mut writer = FileWriter::new(batch.schema().clone()).with_format_version(FormatVersion::V3);
    writer.write_row_group(batch.columns()).expect("writes");
    let blob = MemBlob::new(writer.finish());
    assert_eq!(&blob.as_bytes()[..8], MAGIC_V3);
    let reader = FileReader::open(blob.clone()).expect("v3 file opens");
    assert_eq!(reader.version(), FormatVersion::V3);
    assert_eq!(reader.read_row_group(0).expect("decodes"), batch.columns());
    // Legacy footers carry no page/null statistics; rows still size
    // everything the reader needs.
    assert_eq!(reader.meta().total_rows(), 200);
}

#[test]
#[cfg_attr(feature = "fast-math", ignore = "fast-math ln_1p is not bit-identical by design")]
fn fresh_v3_file_preprocesses_to_pinned_fingerprint() {
    let config = fixture_config();
    let batch = generate_batch(&config, 200, 42);
    let mut writer = FileWriter::new(batch.schema().clone()).with_format_version(FormatVersion::V3);
    writer.write_row_group(batch.columns()).expect("writes");
    let blob = MemBlob::new(writer.finish());
    let plan = PreprocessPlan::from_config(&config, 1).expect("plan");
    let (mb, _) = preprocess_partition(&plan, blob).expect("preprocesses");
    assert_eq!(
        fingerprint(&mb),
        0x8c2b_dfa5_d504_2341,
        "v3-written data must preprocess bit-identically to the v2 fixture"
    );
}

#[test]
fn mixed_magic_versions_are_rejected() {
    let config = fixture_config();
    let batch = generate_batch(&config, 16, 1);
    let blob = write_partition(&batch).expect("writes");
    let mut bytes = blob.as_bytes().to_vec();
    let n = bytes.len();
    // A v3 head with a v2 tail is corruption, not compatibility.
    bytes[n - 8..].copy_from_slice(MAGIC_V2);
    assert!(FileReader::open(MemBlob::new(bytes)).is_err());
    // Unknown versions stay rejected.
    let mut v1 = blob.as_bytes().to_vec();
    v1[..8].copy_from_slice(b"PSTOCOL1");
    v1[n - 8..].copy_from_slice(b"PSTOCOL1");
    assert!(FileReader::open(MemBlob::new(v1)).is_err());
}

/// Every encoding the matrix forces, plus the default cost model.
fn matrix_policies() -> Vec<(&'static str, WritePolicy)> {
    let base = WritePolicy::default();
    vec![
        ("default", base),
        ("plain", base.with_forced_encoding(Encoding::Plain)),
        ("delta_varint", base.with_forced_encoding(Encoding::Delta)),
        ("delta_bitpack", base.with_forced_encoding(Encoding::DeltaBitpack)),
        ("dictionary", base.with_forced_encoding(Encoding::Dictionary)),
        ("lz", base.with_compression(Compression::Lz)),
        ("lz_hot", base.with_compression(Compression::Lz).compressing_hot_columns()),
    ]
}

#[test]
fn every_forced_encoding_roundtrips_row_groups() {
    // The PSTOCOL4 random-access path under the encoding matrix: grouped
    // files written under every forced encoding must serve each row group
    // back bit-identically, including the short last group.
    let mut config = RmConfig::rm1();
    config.batch_size = 300;
    let batch = generate_batch(&config, 300, 7);
    for (name, policy) in matrix_policies() {
        let mut writer = FileWriter::with_page_rows(batch.schema().clone(), 64)
            .with_policy(policy)
            .with_group_rows(128);
        writer.write_batch(batch.columns()).expect("writes");
        let reader = FileReader::open(MemBlob::new(writer.finish())).expect("opens");
        assert_eq!(reader.row_group_count(), 3, "300 rows at 128/group under {name}");
        let mut per_column: Vec<Vec<presto::columnar::Array>> =
            (0..batch.columns().len()).map(|_| Vec::new()).collect();
        for rg in 0..reader.row_group_count() {
            for (col, array) in reader.read_row_group(rg).expect("decodes").into_iter().enumerate()
            {
                per_column[col].push(array);
            }
        }
        for (col, parts) in per_column.into_iter().enumerate() {
            let whole = presto::columnar::column::concat_arrays(&parts).expect("concat");
            assert_eq!(whole, batch.columns()[col], "column {col} differs under {name}");
        }
    }
}

#[test]
fn every_forced_encoding_preprocesses_bit_identically() {
    let mut config = RmConfig::rm1();
    config.batch_size = 300;
    let plan = PreprocessPlan::from_config(&config, 1).expect("plan");
    let batch = generate_batch(&config, 300, 7);
    let reference = {
        let blob = write_partition(&batch).expect("writes");
        preprocess_partition(&plan, blob).expect("preprocesses").0
    };
    for (name, policy) in matrix_policies() {
        // Small pages force multi-page chunks through the batched decoder.
        let mut writer = FileWriter::with_page_rows(batch.schema().clone(), 64).with_policy(policy);
        writer.write_row_group(batch.columns()).expect("writes");
        let blob = MemBlob::new(writer.finish());
        let decoded =
            FileReader::open(blob.clone()).expect("opens").read_row_group(0).expect("decodes");
        assert_eq!(decoded, batch.columns(), "decode differs under {name}");
        let (mb, _) = preprocess_partition(&plan, blob).expect("preprocesses");
        assert_eq!(mb, reference, "preprocessing differs under {name}");
    }
}
