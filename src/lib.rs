//! # presto
//!
//! A full reproduction of **"PreSto: An In-Storage Data Preprocessing
//! System for Training Recommendation Models"** (ISCA 2024) as a Rust
//! workspace. This facade crate re-exports the public API of every
//! sub-crate:
//!
//! | Crate | What it provides |
//! |---|---|
//! | [`columnar`] | From-scratch columnar file format (Parquet substitute) |
//! | [`datagen`] | Table I model configs + synthetic RecSys data |
//! | [`ops`] | Real Bucketize / SigridHash / Log kernels + mini-batch assembly |
//! | [`hwsim`] | Calibrated device models: CPU, SmartSSD ISP, GPU, network, LLC |
//! | [`core`] | The PreSto system: managers, provisioning, pipeline simulation |
//! | [`metrics`] | Energy / TCO models and report formatting |
//!
//! ## Quick start
//!
//! ```
//! use presto::datagen::{generate_batch, RmConfig};
//! use presto::ops::{preprocess_batch, PreprocessPlan};
//!
//! // Build the public-Criteo-shaped model (Table I, RM1) at a small batch.
//! let mut config = RmConfig::rm1();
//! config.batch_size = 256;
//!
//! // Generate raw features and preprocess them into a train-ready batch.
//! let plan = PreprocessPlan::from_config(&config, 42)?;
//! let raw = generate_batch(&config, 256, 7);
//! let (mini_batch, _) = preprocess_batch(&plan, &raw)?;
//! assert_eq!(mini_batch.rows(), 256);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Reproducing the paper
//!
//! Every table and figure in the paper's evaluation has a dedicated binary
//! in `presto-bench` (e.g. `cargo run -p presto-bench --bin fig12`), and
//! `cargo run -p presto-bench --bin repro-all` regenerates everything.
//! DESIGN.md documents the hardware substitutions and the calibration
//! methodology; EXPERIMENTS.md records paper-vs-measured values.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use presto_columnar as columnar;
pub use presto_core as core;
pub use presto_datagen as datagen;
pub use presto_hwsim as hwsim;
pub use presto_metrics as metrics;
pub use presto_ops as ops;
