//! # presto-bench
//!
//! Benchmark harness for the PreSto reproduction (ISCA 2024). One binary
//! per table/figure regenerates the paper's rows and prints the paper's
//! reported value next to the model's output:
//!
//! | Binary | Experiment |
//! |---|---|
//! | `table1` | Table I — dataset/model configurations |
//! | `table2` | Table II — FPGA resource utilization |
//! | `fig03` | Throughput & GPU utilization vs co-located cores |
//! | `fig04` | CPU cores required for 8×A100 |
//! | `fig05` | Single-worker latency breakdown |
//! | `fig06` | CPU/memory/LLC characterization |
//! | `fig11` | Disagg(N) vs PreSto throughput |
//! | `fig12` | Latency breakdown Disagg vs PreSto + speedup |
//! | `fig13` | Aggregate RPC time |
//! | `fig14` | ISP units & CPU cores for 8×A100 |
//! | `fig15` | Energy- and cost-efficiency |
//! | `fig16` | Accelerated alternatives (A100/U280/PreSto) |
//! | `fig17` | Sensitivity to feature count |
//! | `repro-all` | Everything above in sequence |
//!
//! Criterion benches (`cargo bench`) measure the *real* kernels in
//! `presto-ops` and the columnar codec, not the simulation.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use presto_hwsim::breakdown::{Stage, StageBreakdown};
use presto_metrics::TextTable;

/// Prints a standard experiment banner with the paper's headline claim.
pub fn banner(experiment: &str, paper_claim: &str) {
    println!("==================================================================");
    println!("{experiment}");
    println!("paper: {paper_claim}");
    println!("==================================================================");
}

/// Adds a breakdown's stage shares to a table as percentage cells.
#[must_use]
pub fn breakdown_row(label: &str, b: &StageBreakdown) -> Vec<String> {
    let total = b.total().seconds();
    let mut row = vec![label.to_owned()];
    for stage in Stage::ALL {
        row.push(format!("{:.1}%", 100.0 * b.stage(stage).seconds() / total));
    }
    row.push(format!("{:.1} ms", total * 1e3));
    row
}

/// Header matching [`breakdown_row`].
#[must_use]
pub fn breakdown_header() -> Vec<String> {
    let mut h = vec!["system".to_owned()];
    h.extend(Stage::ALL.iter().map(|s| s.label().to_owned()));
    h.push("total".to_owned());
    h
}

/// Renders and prints a table.
pub fn print_table(table: &TextTable) {
    print!("{}", table.render());
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_hwsim::units::Secs;

    #[test]
    fn breakdown_row_shares_sum_to_100() {
        let b = StageBreakdown {
            extract_read: Secs::from_millis(10.0),
            extract_decode: Secs::from_millis(10.0),
            bucketize: Secs::from_millis(20.0),
            sigridhash: Secs::from_millis(20.0),
            log: Secs::from_millis(20.0),
            format: Secs::from_millis(10.0),
            other: Secs::from_millis(5.0),
            load: Secs::from_millis(5.0),
        };
        let row = breakdown_row("x", &b);
        assert_eq!(row.len(), breakdown_header().len());
        let sum: f64 = row[1..row.len() - 1]
            .iter()
            .map(|c| c.trim_end_matches('%').parse::<f64>().unwrap())
            .sum();
        assert!((sum - 100.0).abs() < 0.5, "shares sum {sum}");
        assert!(row.last().unwrap().contains("100.0 ms"));
    }
}
