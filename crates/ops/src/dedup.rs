//! Feature deduplication — the RecD-style optimization the paper cites as
//! orthogonal related work (Zhao et al., "RecD", MLSys 2023).
//!
//! RecSys training samples are generated per user interaction, so
//! consecutive rows from one session often carry *identical* sparse
//! feature lists (the user's history changed by at most one item). RecD
//! deduplicates those lists before normalization: hash each row's list,
//! keep one representative per distinct list, run SigridHash once per
//! representative, and fan the results back out. The transform work drops
//! by the duplication factor while the output is bit-identical.

use crate::sigridhash::SigridHasher;
use std::collections::HashMap;

/// Result of deduplicating one jagged feature.
#[derive(Debug, Clone, PartialEq)]
pub struct DedupPlan {
    /// For each row, the index of its representative in `unique_rows`.
    pub row_to_unique: Vec<u32>,
    /// Row indices (into the original feature) of the representatives.
    pub unique_rows: Vec<u32>,
}

impl DedupPlan {
    /// Number of original rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.row_to_unique.len()
    }

    /// Number of distinct lists.
    #[must_use]
    pub fn unique(&self) -> usize {
        self.unique_rows.len()
    }

    /// Fraction of rows that were duplicates (`0.0` = all distinct).
    #[must_use]
    pub fn dup_ratio(&self) -> f64 {
        if self.row_to_unique.is_empty() {
            0.0
        } else {
            1.0 - self.unique_rows.len() as f64 / self.row_to_unique.len() as f64
        }
    }
}

/// Builds a dedup plan for a jagged feature (`offsets` + `values`).
///
/// Two rows are duplicates when their id lists are element-wise equal.
///
/// # Panics
///
/// Panics if `offsets` is empty or inconsistent with `values`
/// (callers hold validated jagged features).
#[must_use]
pub fn plan_dedup(offsets: &[u32], values: &[i64]) -> DedupPlan {
    assert!(!offsets.is_empty(), "jagged offsets must have at least one entry");
    assert_eq!(*offsets.last().expect("non-empty") as usize, values.len());
    let rows = offsets.len() - 1;
    let mut seen: HashMap<&[i64], u32> = HashMap::with_capacity(rows);
    let mut row_to_unique = Vec::with_capacity(rows);
    let mut unique_rows = Vec::new();
    for row in 0..rows {
        let list = &values[offsets[row] as usize..offsets[row + 1] as usize];
        let unique_idx = *seen.entry(list).or_insert_with(|| {
            unique_rows.push(row as u32);
            (unique_rows.len() - 1) as u32
        });
        row_to_unique.push(unique_idx);
    }
    DedupPlan { row_to_unique, unique_rows }
}

/// SigridHash with deduplication: hashes each *distinct* list once and
/// expands the results, producing exactly what
/// [`SigridHasher::apply`] on the full feature would.
///
/// Returns `(offsets, values, plan)` of the normalized feature.
#[must_use]
pub fn hash_deduped(
    hasher: &SigridHasher,
    offsets: &[u32],
    values: &[i64],
) -> (Vec<u32>, Vec<i64>, DedupPlan) {
    let plan = plan_dedup(offsets, values);

    // Hash each representative list once.
    let hashed_unique: Vec<Vec<i64>> = plan
        .unique_rows
        .iter()
        .map(|&row| {
            let r = row as usize;
            let list = &values[offsets[r] as usize..offsets[r + 1] as usize];
            hasher.apply(list)
        })
        .collect();

    // Fan out.
    let rows = plan.rows();
    let mut out_offsets = Vec::with_capacity(rows + 1);
    out_offsets.push(0u32);
    let mut out_values = Vec::with_capacity(values.len());
    for row in 0..rows {
        let hashed = &hashed_unique[plan.row_to_unique[row] as usize];
        out_values.extend_from_slice(hashed);
        out_offsets.push(out_values.len() as u32);
    }
    (out_offsets, out_values, plan)
}

/// Injects session-style duplication into a jagged feature for evaluation:
/// each row is replaced by a copy of the most recent "session head" with
/// probability `(window - 1) / window` (deterministic round-robin).
///
/// # Panics
///
/// Panics when `window == 0`.
#[must_use]
pub fn inject_duplication(offsets: &[u32], values: &[i64], window: usize) -> (Vec<u32>, Vec<i64>) {
    assert!(window > 0, "duplication window must be positive");
    let rows = offsets.len() - 1;
    let mut out_offsets = vec![0u32];
    let mut out_values = Vec::new();
    let mut head = 0usize;
    for row in 0..rows {
        if row % window == 0 {
            head = row;
        }
        let list = &values[offsets[head] as usize..offsets[head + 1] as usize];
        out_values.extend_from_slice(list);
        out_offsets.push(out_values.len() as u32);
    }
    (out_offsets, out_values)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jagged(lists: &[&[i64]]) -> (Vec<u32>, Vec<i64>) {
        let mut offsets = vec![0u32];
        let mut values = Vec::new();
        for l in lists {
            values.extend_from_slice(l);
            offsets.push(values.len() as u32);
        }
        (offsets, values)
    }

    #[test]
    fn all_distinct_rows_have_no_dups() {
        let (o, v) = jagged(&[&[1, 2], &[3], &[4, 5, 6]]);
        let plan = plan_dedup(&o, &v);
        assert_eq!(plan.unique(), 3);
        assert_eq!(plan.dup_ratio(), 0.0);
    }

    #[test]
    fn exact_duplicates_collapse() {
        let (o, v) = jagged(&[&[7, 8], &[7, 8], &[], &[], &[7, 8]]);
        let plan = plan_dedup(&o, &v);
        assert_eq!(plan.unique(), 2); // [7,8] and []
        assert_eq!(plan.row_to_unique, vec![0, 0, 1, 1, 0]);
        assert!((plan.dup_ratio() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn prefix_is_not_a_duplicate() {
        let (o, v) = jagged(&[&[1, 2, 3], &[1, 2]]);
        assert_eq!(plan_dedup(&o, &v).unique(), 2);
    }

    #[test]
    fn hash_deduped_matches_direct_hash() {
        let hasher = SigridHasher::new(9, 500_000).unwrap();
        let (o, v) = jagged(&[&[10, 20], &[10, 20], &[30], &[10, 20], &[]]);
        let (oo, ov, plan) = hash_deduped(&hasher, &o, &v);
        assert_eq!(oo, o);
        assert_eq!(ov, hasher.apply(&v));
        assert_eq!(plan.unique(), 3);
    }

    #[test]
    fn injected_duplication_reaches_expected_ratio() {
        let lists: Vec<Vec<i64>> = (0..100).map(|i| vec![i, i + 1]).collect();
        let refs: Vec<&[i64]> = lists.iter().map(Vec::as_slice).collect();
        let (o, v) = jagged(&refs);
        let (od, vd) = inject_duplication(&o, &v, 4);
        let plan = plan_dedup(&od, &vd);
        assert_eq!(plan.unique(), 25);
        assert!((plan.dup_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn dedup_saves_hash_work_proportionally() {
        let hasher = SigridHasher::new(3, 500_000).unwrap();
        let lists: Vec<Vec<i64>> = (0..64).map(|i| vec![i; 8]).collect();
        let refs: Vec<&[i64]> = lists.iter().map(Vec::as_slice).collect();
        let (o, v) = jagged(&refs);
        let (od, vd) = inject_duplication(&o, &v, 8);
        let (_, out, plan) = hash_deduped(&hasher, &od, &vd);
        // Work dropped 8x; output still matches the direct path.
        assert_eq!(plan.unique(), 8);
        assert_eq!(out, hasher.apply(&vd));
    }

    #[test]
    fn empty_feature_is_fine() {
        let plan = plan_dedup(&[0], &[]);
        assert_eq!(plan.rows(), 0);
        assert_eq!(plan.dup_ratio(), 0.0);
        let hasher = SigridHasher::new(1, 10).unwrap();
        let (o, v, _) = hash_deduped(&hasher, &[0], &[]);
        assert_eq!(o, vec![0]);
        assert!(v.is_empty());
    }
}
