//! The queue-depth device model, checked from both sides.
//!
//! Executable side (`presto_columnar::Device`): with queue depth 1, `N`
//! concurrent reads must take at least `N ×` the single-read latency
//! (reads serialize at the device); with queue depth ≥ `N` they overlap.
//! Analytic side (`presto_hwsim::ssd::SsdModel`): `queued_service_time`
//! must predict exactly the serialization the token queue schedules — the
//! two models agree by construction, which is what makes the streaming
//! contention ablation physically meaningful.
//!
//! Timing assertions are one-sided or generously banded: lower bounds are
//! exact (a sleep never returns early), upper bounds leave room for
//! scheduler noise on loaded hosts.

use presto::columnar::{BlobRead, Device, DeviceModel, MemBlob};
use presto::hwsim::ssd::SsdModel;
use presto::hwsim::units::Secs;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Issues one read per thread through `device` and returns the elapsed
/// wall-clock time from before the first spawn to after the last join.
fn concurrent_reads(device: &Arc<Device>, threads: usize) -> Duration {
    let blob = MemBlob::new(vec![7u8; 256]).behind_device(Arc::clone(device));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let blob = blob.clone();
            scope.spawn(move || {
                let got = blob.read_at(t as u64, 8).expect("in range");
                assert_eq!(got, vec![7u8; 8]);
            });
        }
    });
    start.elapsed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Queue depth 1: N concurrent reads serialize into ≥ N × latency.
    #[test]
    fn depth_one_serializes_concurrent_reads(n in 2usize..=4, latency_ms in 4u64..=8) {
        let latency = Duration::from_millis(latency_ms);
        let device = Arc::new(Device::new(DeviceModel::new(latency, 1)));
        let elapsed = concurrent_reads(&device, n);
        let floor = latency * n as u32;
        prop_assert!(
            elapsed >= floor,
            "{n} reads through a depth-1 device overlapped: {elapsed:?} < {floor:?}"
        );
        // The schedule itself is exact: completions chain one latency apart.
        prop_assert!(device.stats().makespan >= floor);
        prop_assert_eq!(device.stats().reads, n as u64);
    }

    /// Queue depth ≥ N restores overlap: N concurrent reads cost roughly
    /// one latency, not N.
    #[test]
    fn depth_at_least_n_overlaps(n in 2usize..=4) {
        let latency = Duration::from_millis(50);
        let device = Arc::new(Device::new(DeviceModel::new(latency, n)));
        let elapsed = concurrent_reads(&device, n);
        prop_assert!(elapsed >= latency, "a read cannot beat its own latency");
        // Tolerant ceiling: half a latency under the fully serialized
        // N × latency, so only genuine queueing (not scheduler skew on a
        // loaded CI host) can trip it.
        let ceiling = latency * n as u32 - latency / 2;
        prop_assert!(
            elapsed < ceiling,
            "depth {n} failed to overlap {n} reads: {elapsed:?} >= {ceiling:?}"
        );
    }

    /// The executable token queue and the analytic SSD model compute the
    /// same backlogged-device serialization, for any (reads, depth).
    #[test]
    fn device_model_and_hwsim_prediction_agree(
        reads in 0u64..200,
        depth in 1usize..16,
        latency_us in 1u64..5_000,
    ) {
        let latency = Duration::from_micros(latency_us);
        let executable = DeviceModel::new(latency, depth).serialized_time(reads);
        let analytic = SsdModel::nvme()
            .with_queue_depth(depth)
            .queued_service_time(reads, Secs::new(latency.as_secs_f64()));
        let delta = (executable.as_secs_f64() - analytic.seconds()).abs();
        prop_assert!(
            delta < 1e-9,
            "serialization disagrees: device {executable:?} vs hwsim {}s",
            analytic.seconds()
        );
    }
}

/// A backlogged depth-1 device driven by more threads than slots: the
/// scheduled makespan must match the hwsim prediction within 10% — the
/// agreement the streaming ablation (`ablation-stream`) reports.
#[test]
fn backlogged_depth_one_matches_hwsim_within_ten_percent() {
    let latency = Duration::from_millis(2);
    let device = Arc::new(Device::new(DeviceModel::new(latency, 1)));
    let blob = MemBlob::new(vec![1u8; 1024]).behind_device(Arc::clone(&device));
    let reads_per_thread = 4u64;
    let threads = 4u64;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let blob = blob.clone();
            scope.spawn(move || {
                for i in 0..reads_per_thread {
                    blob.read_at(i * 16, 16).expect("in range");
                }
            });
        }
    });
    let stats = device.stats();
    assert_eq!(stats.reads, threads * reads_per_thread);
    let predicted = SsdModel::nvme()
        .with_queue_depth(1)
        .queued_service_time(stats.reads, Secs::new(latency.as_secs_f64()));
    let ratio = stats.makespan.as_secs_f64() / predicted.seconds();
    assert!(
        (0.9..=1.1).contains(&ratio),
        "measured/predicted = {ratio:.3} (makespan {:?}, predicted {}s)",
        stats.makespan,
        predicted.seconds()
    );
}

/// `with_read_latency` keeps its legacy meaning: a private deep-queued
/// device where overlapping readers never queue behind each other.
#[test]
fn legacy_latency_blobs_do_not_contend() {
    let latency = Duration::from_millis(20);
    let blob = MemBlob::new(vec![0u8; 64]).with_read_latency(latency);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let blob = blob.clone();
            scope.spawn(move || blob.read_at(0, 8).expect("in range"));
        }
    });
    let elapsed = start.elapsed();
    assert!(elapsed >= latency);
    assert!(elapsed < latency * 3, "legacy latency blobs must not serialize: {elapsed:?}");
}
