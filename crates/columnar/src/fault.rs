//! Deterministic fault injection for storage blobs — the chaos harness
//! behind every recovery test in this workspace.
//!
//! A production preprocessing fleet loses devices, sees corrupt pages and
//! waits out latency spikes as *routine* events; an executor is only as
//! trustworthy as its behavior under them. This module makes those events
//! reproducible: a seeded [`FaultPlan`] decides, purely as a function of
//! `(seed, device, partition, read index)`, whether each positioned read
//! fails transiently, returns corrupted bytes (the page CRC catches them
//! downstream), pays a latency spike, or — once a device's read counter
//! passes a configured threshold — dies permanently. Two runs with the same
//! plan and the same per-partition read sequences inject the same faults,
//! which is what lets property tests assert that a recovered stream is
//! bit-identical to a fault-free one.
//!
//! Faults are *attached* to blobs, not woven into readers:
//!
//! * [`FaultyBlob`] wraps any [`BlobRead`] backend (files included) and
//!   intercepts `read_at_into`.
//! * [`MemBlob::with_faults`](crate::MemBlob::with_faults) arms the
//!   workspace's standard in-memory partitions in place, so the streaming
//!   executors run over faulty storage with no type changes. Arming
//!   disables the zero-copy borrows — like an emulated
//!   [`Device`](crate::Device), a faulty medium exposes *reads*, not
//!   memory, so every byte passes through the injector.
//!
//! Injected corruption flips bytes in the **read buffer only**; the stored
//! bytes stay pristine, so a retry of the same read returns good data.
//! Permanent death models the loss of the *access path* the armed blob
//! represents (an ISP engine, a link, a controller): the same bytes read
//! through a differently-armed (or unarmed) clone still succeed, which is
//! exactly the property ISP→host failover relies on.

use crate::error::Result;
use crate::io::BlobRead;
use crate::ColumnarError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One scheduled permanent device death.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceDeath {
    /// Device id ([`crate::MemBlob::with_faults`]'s `device` argument).
    pub device: usize,
    /// Reads the device services before dying; `0` means dead on arrival.
    pub after_reads: u64,
}

/// Seeded, deterministic description of the faults to inject.
///
/// Rates are per *positioned read* and drawn from a hash of
/// `(seed, device, partition, read index)` — no global RNG state, so the
/// decision for a given read never depends on thread interleaving. Build
/// one plan, [`arm`](FaultPlan::arm) it into a shared [`FaultInjector`],
/// and attach that injector to every blob in the run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed feeding the per-read decision hash.
    pub seed: u64,
    /// Probability a read fails with a transient I/O error.
    pub transient_rate: f64,
    /// Probability a read returns corrupted bytes (one byte flipped in the
    /// destination buffer; page CRCs catch it downstream).
    pub corrupt_rate: f64,
    /// Probability a read stalls for [`FaultPlan::spike`] before completing.
    pub spike_rate: f64,
    /// Duration of one injected latency spike/stall.
    pub spike: Duration,
    /// Devices scheduled to die permanently.
    pub deaths: Vec<DeviceDeath>,
}

impl FaultPlan {
    /// A fault-free plan with the given seed; add faults with the builders.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_rate: 0.0,
            corrupt_rate: 0.0,
            spike_rate: 0.0,
            spike: Duration::ZERO,
            deaths: Vec::new(),
        }
    }

    /// Sets the transient-error rate (clamped to `[0, 1]`).
    #[must_use]
    pub fn with_transient_rate(mut self, rate: f64) -> Self {
        self.transient_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the buffer-corruption rate (clamped to `[0, 1]`).
    #[must_use]
    pub fn with_corrupt_rate(mut self, rate: f64) -> Self {
        self.corrupt_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the latency-spike rate and duration (rate clamped to `[0, 1]`).
    #[must_use]
    pub fn with_spikes(mut self, rate: f64, spike: Duration) -> Self {
        self.spike_rate = rate.clamp(0.0, 1.0);
        self.spike = spike;
        self
    }

    /// Schedules `device` to die permanently after `after_reads` reads.
    #[must_use]
    pub fn with_device_death(mut self, device: usize, after_reads: u64) -> Self {
        self.deaths.push(DeviceDeath { device, after_reads });
        self
    }

    /// Freezes the plan into a shareable runtime injector.
    #[must_use]
    pub fn arm(self) -> Arc<FaultInjector> {
        Arc::new(FaultInjector::new(self))
    }
}

/// Counts of faults actually injected so far (tests assert the harness did
/// something; reports attribute degraded throughput to a cause).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transient I/O errors returned.
    pub transient: u64,
    /// Reads whose destination buffer was corrupted.
    pub corrupt: u64,
    /// Latency spikes paid.
    pub spikes: u64,
    /// Reads refused because their device was dead.
    pub dead_reads: u64,
}

/// What the injector decided for one read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    Transient,
    Corrupt,
    Spike,
    Dead,
}

/// Runtime state of one armed [`FaultPlan`]: shared (via `Arc`) by every
/// blob in a run so per-device death counters and injected-fault statistics
/// aggregate across the whole fleet.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Reads serviced per device scheduled to die (same order as
    /// `plan.deaths`).
    death_reads: Vec<AtomicU64>,
    transient: AtomicU64,
    corrupt: AtomicU64,
    spikes: AtomicU64,
    dead_reads: AtomicU64,
}

/// SplitMix64 finalizer: a full-avalanche 64-bit mixer.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl FaultInjector {
    fn new(plan: FaultPlan) -> Self {
        let death_reads = plan.deaths.iter().map(|_| AtomicU64::new(0)).collect();
        FaultInjector {
            plan,
            death_reads,
            transient: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            spikes: AtomicU64::new(0),
            dead_reads: AtomicU64::new(0),
        }
    }

    /// The plan this injector executes.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Faults injected so far, across every armed blob.
    #[must_use]
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            transient: self.transient.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            spikes: self.spikes.load(Ordering::Relaxed),
            dead_reads: self.dead_reads.load(Ordering::Relaxed),
        }
    }

    /// Whether `device` has served out its scheduled lifetime.
    #[must_use]
    pub fn device_is_dead(&self, device: usize) -> bool {
        self.plan
            .deaths
            .iter()
            .zip(&self.death_reads)
            .any(|(d, reads)| d.device == device && reads.load(Ordering::Relaxed) >= d.after_reads)
    }

    /// Decides the fate of one read. Increments the device's death counter,
    /// so calling this *is* servicing a read for lifetime purposes.
    fn decide(&self, device: usize, partition: usize, read_index: u64) -> Option<Fault> {
        for (death, reads) in self.plan.deaths.iter().zip(&self.death_reads) {
            if death.device == device {
                let served = reads.fetch_add(1, Ordering::Relaxed);
                if served >= death.after_reads {
                    self.dead_reads.fetch_add(1, Ordering::Relaxed);
                    return Some(Fault::Dead);
                }
            }
        }
        let total = self.plan.transient_rate + self.plan.corrupt_rate + self.plan.spike_rate;
        if total <= 0.0 {
            return None;
        }
        let h = mix(self.plan.seed ^ mix(device as u64 ^ mix(partition as u64 ^ mix(read_index))));
        // 53 uniform bits → [0, 1).
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        if u < self.plan.transient_rate {
            self.transient.fetch_add(1, Ordering::Relaxed);
            Some(Fault::Transient)
        } else if u < self.plan.transient_rate + self.plan.corrupt_rate {
            self.corrupt.fetch_add(1, Ordering::Relaxed);
            Some(Fault::Corrupt)
        } else if u < total {
            self.spikes.fetch_add(1, Ordering::Relaxed);
            Some(Fault::Spike)
        } else {
            None
        }
    }
}

/// One blob's attachment point to a shared [`FaultInjector`]: the injector
/// plus the `(device, partition)` coordinates faults are keyed on and the
/// blob's monotone read index. Clones of an armed blob share the site, so
/// the read sequence of a partition is counted once however many handles
/// exist.
#[derive(Debug)]
pub struct FaultSite {
    injector: Arc<FaultInjector>,
    device: usize,
    partition: usize,
    next_read: AtomicU64,
}

impl FaultSite {
    /// Creates a site binding `injector` to one `(device, partition)`.
    #[must_use]
    pub fn new(injector: Arc<FaultInjector>, device: usize, partition: usize) -> Self {
        FaultSite { injector, device, partition, next_read: AtomicU64::new(0) }
    }

    /// The injector this site feeds.
    #[must_use]
    pub fn injector(&self) -> &Arc<FaultInjector> {
        &self.injector
    }

    /// Runs one read through the injector: sleeps out spikes, fails
    /// transient/dead reads, and returns whether the caller must corrupt
    /// the filled buffer afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`ColumnarError::Io`] for injected transient faults and for
    /// reads on a dead device (the error message distinguishes them).
    pub fn intercept(&self) -> Result<bool> {
        let index = self.next_read.fetch_add(1, Ordering::Relaxed);
        match self.injector.decide(self.device, self.partition, index) {
            None => Ok(false),
            Some(Fault::Corrupt) => Ok(true),
            Some(Fault::Spike) => {
                std::thread::sleep(self.injector.plan.spike);
                Ok(false)
            }
            Some(Fault::Transient) => Err(ColumnarError::Io {
                detail: format!(
                    "injected transient fault (device {}, partition {}, read {index})",
                    self.device, self.partition
                ),
            }),
            Some(Fault::Dead) => Err(ColumnarError::Io {
                detail: format!(
                    "device {} is dead (injected permanent failure; partition {})",
                    self.device, self.partition
                ),
            }),
        }
    }

    /// Deterministically corrupts a filled read buffer (flips the middle
    /// byte). No-op on empty buffers.
    pub fn corrupt(buf: &mut [u8]) {
        if let Some(b) = buf.get_mut(buf.len() / 2) {
            *b ^= 0xA5;
        }
    }
}

/// A [`BlobRead`] decorator that injects the faults a shared
/// [`FaultInjector`] schedules for one `(device, partition)`.
///
/// Works over any backend ([`crate::FsBlob`] included). For the in-memory
/// partitions the executors use, prefer
/// [`MemBlob::with_faults`](crate::MemBlob::with_faults), which arms the
/// blob without changing its type. Like [`crate::CountingBlob`], this
/// decorator does not forward the zero-copy borrows — every read must pass
/// through the injector.
#[derive(Debug)]
pub struct FaultyBlob<B> {
    inner: B,
    site: Arc<FaultSite>,
}

impl<B: BlobRead> FaultyBlob<B> {
    /// Wraps `inner`, keying faults on `(device, partition)`.
    #[must_use]
    pub fn new(inner: B, injector: Arc<FaultInjector>, device: usize, partition: usize) -> Self {
        FaultyBlob { inner, site: Arc::new(FaultSite::new(injector, device, partition)) }
    }

    /// Returns the wrapped blob.
    #[must_use]
    pub fn into_inner(self) -> B {
        self.inner
    }
}

impl<B: BlobRead> BlobRead for FaultyBlob<B> {
    fn blob_len(&self) -> u64 {
        self.inner.blob_len()
    }

    fn read_at_into(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let corrupt = self.site.intercept()?;
        self.inner.read_at_into(offset, buf)?;
        if corrupt {
            FaultSite::corrupt(buf);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemBlob;

    #[test]
    fn fault_free_plan_injects_nothing() {
        let injector = FaultPlan::new(7).arm();
        let blob = FaultyBlob::new(MemBlob::new((0u8..64).collect()), injector.clone(), 0, 0);
        for i in 0..16 {
            assert_eq!(blob.read_at(i, 4).unwrap()[0], i as u8);
        }
        assert_eq!(injector.stats(), FaultStats::default());
    }

    #[test]
    fn transient_faults_are_deterministic_and_counted() {
        let run = |seed: u64| -> Vec<bool> {
            let injector = FaultPlan::new(seed).with_transient_rate(0.3).arm();
            let blob = FaultyBlob::new(MemBlob::new(vec![0; 256]), injector, 2, 5);
            (0..64).map(|i| blob.read_at(i, 2).is_err()).collect()
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "same seed, same faults");
        assert!(a.iter().any(|&e| e), "rate 0.3 over 64 reads must fire");
        assert!(a.iter().any(|&e| !e), "rate 0.3 must not fire everywhere");
        let c = run(43);
        assert_ne!(a, c, "different seed, different faults");
    }

    #[test]
    fn corruption_flips_buffer_bytes_but_not_storage() {
        let injector = FaultPlan::new(9).with_corrupt_rate(1.0).arm();
        let blob = FaultyBlob::new(MemBlob::new((0u8..32).collect()), injector.clone(), 0, 0);
        let got = blob.read_at(0, 8).unwrap();
        assert_ne!(got, (0u8..8).collect::<Vec<_>>(), "buffer must be corrupted");
        assert_eq!(blob.into_inner().as_bytes()[..8], *(0u8..8).collect::<Vec<_>>());
        assert!(injector.stats().corrupt >= 1);
    }

    #[test]
    fn device_death_triggers_after_scheduled_reads_and_is_permanent() {
        let injector = FaultPlan::new(1).with_device_death(3, 5).arm();
        let blob = FaultyBlob::new(MemBlob::new(vec![1; 64]), injector.clone(), 3, 0);
        for _ in 0..5 {
            blob.read_at(0, 4).expect("alive while under budget");
        }
        assert!(!injector.device_is_dead(3) || injector.stats().dead_reads == 0);
        for _ in 0..3 {
            let err = blob.read_at(0, 4).expect_err("dead after budget");
            assert!(err.to_string().contains("dead"), "{err}");
        }
        assert!(injector.device_is_dead(3));
        assert_eq!(injector.stats().dead_reads, 3);
        // Other devices sharing the injector stay alive.
        let other = FaultyBlob::new(MemBlob::new(vec![2; 64]), injector, 1, 0);
        other.read_at(0, 4).expect("device 1 unaffected");
    }

    #[test]
    fn spikes_delay_but_do_not_fail() {
        let injector = FaultPlan::new(3).with_spikes(1.0, Duration::from_millis(5)).arm();
        let blob = FaultyBlob::new(MemBlob::new(vec![0; 16]), injector.clone(), 0, 0);
        let t0 = std::time::Instant::now();
        blob.read_at(0, 4).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(5), "spike must stall the read");
        assert_eq!(injector.stats().spikes, 1);
    }

    #[test]
    fn rates_are_clamped() {
        let plan = FaultPlan::new(0)
            .with_transient_rate(7.0)
            .with_corrupt_rate(-1.0)
            .with_spikes(2.0, Duration::ZERO);
        assert_eq!(plan.transient_rate, 1.0);
        assert_eq!(plan.corrupt_rate, 0.0);
        assert_eq!(plan.spike_rate, 1.0);
    }

    #[test]
    fn mem_blob_arming_routes_reads_through_the_injector() {
        let injector = FaultPlan::new(11).with_transient_rate(1.0).arm();
        let blob = MemBlob::new((0u8..32).collect()).with_faults(&injector, 0, 4);
        assert!(blob.as_slice().is_none(), "armed blobs expose reads, not memory");
        assert!(blob.as_shared().is_none());
        assert!(blob.read_at(0, 4).is_err(), "rate-1.0 transient plan fails every read");
        // Clones share the site (and its read counter).
        assert!(blob.clone().read_at(0, 4).is_err());
        assert!(injector.stats().transient >= 2);
        // The pristine path ignores the arming: same bytes, no faults.
        let clean = blob.without_faults();
        assert_eq!(clean.read_at(0, 4).unwrap(), vec![0, 1, 2, 3]);
        assert!(clean.as_slice().is_some(), "unarmed clone restores memory semantics");
    }
}
