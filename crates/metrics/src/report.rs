//! Aligned text tables and CSV output for the benchmark harness.
//!
//! No external dependencies: the harness prints paper-style rows to stdout
//! and optionally writes CSV for plotting.

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len().max(row.len()), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns and a separator rule.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, width) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<width$}");
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let rule_len = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders the table as CSV (RFC-4180 quoting for commas/quotes).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            let encoded: Vec<String> = cells
                .iter()
                .map(|c| {
                    if c.contains(',') || c.contains('"') || c.contains('\n') {
                        format!("\"{}\"", c.replace('"', "\"\""))
                    } else {
                        c.clone()
                    }
                })
                .collect();
            out.push_str(&encoded.join(","));
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Formats a ratio like `9.6x`.
#[must_use]
pub fn ratio(value: f64) -> String {
    format!("{value:.1}x")
}

/// Formats a fraction as a percentage like `40.8%`.
#[must_use]
pub fn percent(value: f64) -> String {
    format!("{:.1}%", value * 100.0)
}

/// Formats samples/second with thousands separators like `146,736`.
#[must_use]
pub fn samples_per_sec(value: f64) -> String {
    let v = value.round() as i64;
    let mut digits = v.abs().to_string();
    let mut grouped = String::new();
    while digits.len() > 3 {
        let tail = digits.split_off(digits.len() - 3);
        grouped = if grouped.is_empty() { tail } else { format!("{tail},{grouped}") };
    }
    let grouped = if grouped.is_empty() { digits } else { format!("{digits},{grouped}") };
    if v < 0 {
        format!("-{grouped}")
    } else {
        grouped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(vec!["model", "value"]);
        t.row(vec!["RM1", "1.0"]);
        t.row(vec!["RM5 long", "14.2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("model"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns aligned: "value" column starts at the same offset.
        let col = lines[0].find("value").unwrap();
        assert_eq!(&lines[2][col..col + 3], "1.0");
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["x"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        let csv = t.to_csv();
        assert_eq!(csv.lines().nth(1).unwrap(), "x,,");
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = TextTable::new(vec!["name"]);
        t.row(vec!["a,b"]);
        t.row(vec!["say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn formatters() {
        assert_eq!(ratio(9.62), "9.6x");
        assert_eq!(percent(0.408), "40.8%");
        assert_eq!(samples_per_sec(146_736.4), "146,736");
        assert_eq!(samples_per_sec(512.0), "512");
        assert_eq!(samples_per_sec(1_000_000.0), "1,000,000");
        assert_eq!(samples_per_sec(-1234.0), "-1,234");
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = TextTable::new(vec!["x"]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 2);
    }
}
