//! The four preprocessing system architectures the paper compares.
//!
//! * **Co-located** — workers share the GPU training node (Fig. 2a).
//! * **Disagg** — a disaggregated CPU pool (Fig. 2b), the baseline.
//! * **Accelerator pool** — A100 or U280 cards behind the network
//!   (Fig. 7b).
//! * **PreSto** — ISP inside the storage system (Fig. 8), SmartSSD or
//!   storage-node U280 builds.
//!
//! Each system answers the same questions: per-worker latency breakdown,
//! aggregate preprocessing throughput, RPC traffic and power.

use presto_datagen::WorkloadProfile;
use presto_hwsim::breakdown::StageBreakdown;
use presto_hwsim::calib;
use presto_hwsim::cpu::{CpuWorkerModel, DataLocality};
use presto_hwsim::fpga::IspModel;
use presto_hwsim::gpu::GpuPreprocessModel;
use presto_hwsim::net::{NetworkModel, RpcAccount};
use presto_hwsim::power::{storage_node_power, CpuNodePower};
use presto_hwsim::units::{Secs, Watts};

/// Columns coalesced per bulk-fetch RPC by pool-style prefetchers.
///
/// Disaggregated preprocessing nodes (CPU or accelerator pools) issue one
/// ranged read per column chunk but keep several in flight; we model the
/// fetch pipeline as 8-way coalescing when computing steady-state
/// throughput, while single-batch latency pays the full per-column cost.
pub const POOL_FETCH_COALESCING: u64 = 8;

/// A preprocessing system design point.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum System {
    /// CPU workers co-located with GPU training on the same host (Fig. 2a).
    Colocated {
        /// Number of worker cores (≤ 16 per GPU on a DGX-class host).
        workers: usize,
        /// The per-core model.
        cpu: CpuWorkerModel,
    },
    /// Disaggregated CPU pool (Fig. 2b) — the paper's baseline.
    DisaggCpu {
        /// Number of pool cores.
        cores: usize,
        /// The per-core model.
        cpu: CpuWorkerModel,
    },
    /// Disaggregated accelerator pool of A100s running NVTabular (Fig. 7b).
    GpuPool {
        /// Number of cards.
        cards: usize,
        /// The per-card model.
        gpu: GpuPreprocessModel,
        /// The pool's network.
        net: NetworkModel,
    },
    /// Disaggregated accelerator pool of U280 FPGAs (Fig. 7b).
    FpgaPool {
        /// Number of cards.
        cards: usize,
        /// The per-card model (use [`IspModel::u280_disaggregated`]).
        isp: IspModel,
        /// The pool's network.
        net: NetworkModel,
    },
    /// PreSto: ISP units inside the storage system (Fig. 8).
    Presto {
        /// Number of ISP devices.
        units: usize,
        /// The per-device model (SmartSSD or storage-node U280 build).
        isp: IspModel,
    },
}

impl System {
    /// The baseline Disagg system with `cores` PoC cores.
    #[must_use]
    pub fn disagg(cores: usize) -> Self {
        System::DisaggCpu { cores, cpu: CpuWorkerModel::poc() }
    }

    /// PreSto with `units` SmartSSDs.
    #[must_use]
    pub fn presto_smartssd(units: usize) -> Self {
        System::Presto { units, isp: IspModel::smartssd() }
    }

    /// PreSto with one storage-node U280.
    #[must_use]
    pub fn presto_u280() -> Self {
        System::Presto { units: 1, isp: IspModel::u280_in_storage() }
    }

    /// A co-located system with `workers` cores.
    #[must_use]
    pub fn colocated(workers: usize) -> Self {
        System::Colocated { workers, cpu: CpuWorkerModel::poc() }
    }

    /// A one-card A100 NVTabular pool.
    #[must_use]
    pub fn gpu_pool(cards: usize) -> Self {
        System::GpuPool { cards, gpu: GpuPreprocessModel::a100(), net: NetworkModel::poc() }
    }

    /// A one-card U280 pool.
    #[must_use]
    pub fn fpga_pool(cards: usize) -> Self {
        System::FpgaPool { cards, isp: IspModel::u280_disaggregated(), net: NetworkModel::poc() }
    }

    /// Display name matching the paper's figure legends.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            System::Colocated { workers, .. } => format!("Co-located({workers})"),
            System::DisaggCpu { cores, .. } => format!("Disagg({cores})"),
            System::GpuPool { cards, .. } => {
                if *cards == 1 {
                    "A100".into()
                } else {
                    format!("A100 x{cards}")
                }
            }
            System::FpgaPool { cards, isp, .. } => {
                if *cards == 1 {
                    isp.name().into()
                } else {
                    format!("{} x{cards}", isp.name())
                }
            }
            System::Presto { units, isp } => {
                if *units == 1 {
                    isp.name().into()
                } else {
                    format!("{} x{units}", isp.name())
                }
            }
        }
    }

    /// Number of parallel workers/devices.
    #[must_use]
    pub fn parallelism(&self) -> usize {
        match self {
            System::Colocated { workers, .. } => *workers,
            System::DisaggCpu { cores, .. } => *cores,
            System::GpuPool { cards, .. } | System::FpgaPool { cards, .. } => *cards,
            System::Presto { units, .. } => *units,
        }
    }

    /// Single-worker latency breakdown for one mini-batch (Figs. 5 and 12).
    #[must_use]
    pub fn worker_breakdown(&self, profile: &WorkloadProfile) -> StageBreakdown {
        match self {
            System::Colocated { cpu, .. } => cpu
                .stage_breakdown(profile, DataLocality::RemoteStorage)
                .scaled(1.0 / calib::cpu::COLOCATION_EFFICIENCY),
            System::DisaggCpu { cpu, .. } => {
                cpu.stage_breakdown(profile, DataLocality::RemoteStorage)
            }
            System::GpuPool { gpu, net, .. } => {
                let mut b = StageBreakdown::default();
                // Pool prefetchers coalesce ranged reads into bulk RPCs.
                let calls = profile.num_columns.div_ceil(POOL_FETCH_COALESCING);
                b.extract_read = net.rpc_time(calls, profile.raw_bytes);
                b.other = gpu.batch_time(profile);
                b.load = net.rpc_time(1, profile.tensor_bytes);
                b
            }
            System::FpgaPool { isp, net, .. } => {
                let mut b = isp.stage_breakdown(profile);
                let calls = profile.num_columns.div_ceil(POOL_FETCH_COALESCING);
                b.extract_read = net.rpc_time(calls, profile.raw_bytes);
                b.load = net.rpc_time(1, profile.tensor_bytes);
                b
            }
            System::Presto { isp, .. } => isp.stage_breakdown(profile),
        }
    }

    /// Single-worker latency for one mini-batch.
    #[must_use]
    pub fn worker_latency(&self, profile: &WorkloadProfile) -> Secs {
        self.worker_breakdown(profile).total()
    }

    /// Per-worker steady-state throughput, samples/sec.
    #[must_use]
    pub fn per_worker_throughput(&self, profile: &WorkloadProfile) -> f64 {
        let rows = profile.rows as f64;
        match self {
            System::Colocated { cpu, .. } => {
                cpu.throughput(profile, DataLocality::RemoteStorage)
                    * calib::cpu::COLOCATION_EFFICIENCY
            }
            System::DisaggCpu { cpu, .. } => cpu.throughput(profile, DataLocality::RemoteStorage),
            System::GpuPool { gpu, net, .. } => {
                let compute = gpu.batch_time(profile);
                rows / compute.max(pool_net_stage(net, profile)).seconds()
            }
            System::FpgaPool { isp, net, .. } => {
                let compute = rows / isp.throughput(profile);
                rows / Secs::new(compute).max(pool_net_stage(net, profile)).seconds()
            }
            System::Presto { isp, .. } => isp.throughput(profile),
        }
    }

    /// Aggregate preprocessing throughput, samples/sec (Fig. 11).
    #[must_use]
    pub fn throughput(&self, profile: &WorkloadProfile) -> f64 {
        self.per_worker_throughput(profile) * self.parallelism() as f64
    }

    /// Executor shape for running this system's preprocessing fleet *for
    /// real* through the streaming executor (`presto_ops::stream`): one
    /// pipeline per worker/device and a `2×` output-channel capacity, the
    /// rule of thumb the streaming ablation settled on. Host-CPU systems
    /// keep the Extract prefetch thread (double buffering); PreSto units
    /// overlap Extract internally (Sec. IV-C double buffering happens
    /// on-card), so their fused pipeline runs without a host-side
    /// prefetcher.
    ///
    /// This is what lets the trainer-in-the-loop experiments size the real
    /// executor from the same [`System`] value the analytic model prices.
    #[must_use]
    pub fn stream_config(&self) -> presto_ops::FleetConfig {
        let workers = self.parallelism().max(1);
        let config = presto_ops::FleetConfig::new(workers, 2 * workers);
        match self {
            System::Presto { .. } => config.without_prefetch(),
            _ => config,
        }
    }

    /// Cost-model-driven placement of a compiled plan's operator stages on
    /// this system: accelerator-backed systems price each stage on their
    /// own device model and offload the stages that win, CPU systems keep
    /// everything on the host (see [`crate::placement`]).
    #[must_use]
    pub fn plan_placement(
        &self,
        plan: &presto_ops::PreprocessPlan,
        rows: usize,
    ) -> crate::placement::PlacementPlan {
        use crate::placement::{place_stages, OpCostModel};
        let model = match self {
            System::FpgaPool { isp, .. } | System::Presto { isp, .. } => OpCostModel::analytic(isp),
            System::Colocated { .. } | System::DisaggCpu { .. } | System::GpuPool { .. } => {
                OpCostModel::host_only()
            }
        };
        place_stages(plan, rows, &model)
    }

    /// RPC traffic per mini-batch (Fig. 13).
    #[must_use]
    pub fn rpc_account(&self, profile: &WorkloadProfile) -> RpcAccount {
        match self {
            System::Colocated { cpu, .. } | System::DisaggCpu { cpu, .. } => {
                cpu.rpc_account(profile, DataLocality::RemoteStorage)
            }
            System::GpuPool { .. } | System::FpgaPool { .. } => {
                let pull = RpcAccount { calls: profile.num_columns, bytes: profile.raw_bytes };
                let push = RpcAccount { calls: 1, bytes: profile.tensor_bytes };
                pull.plus(push)
            }
            // PreSto extracts P2P inside the device; only the train-ready
            // tensors cross the network.
            System::Presto { .. } => RpcAccount { calls: 1, bytes: profile.tensor_bytes },
        }
    }

    /// Preprocessing-attributable power draw of the whole system.
    ///
    /// Both sides include the storage node that hosts the raw data; Disagg
    /// adds the CPU fleet, PreSto adds its cards (Sec. V-C methodology).
    #[must_use]
    pub fn power(&self) -> Watts {
        let storage_baseline = storage_node_power(0, Watts::new(0.0));
        match self {
            System::Colocated { workers, .. } => {
                // Co-located workers burn GPU-node CPU power; charge the
                // per-core share of an active node plus the storage node.
                let node = CpuNodePower::xeon_node();
                storage_baseline + node.power_with_busy_cores(*workers)
            }
            System::DisaggCpu { cores, .. } => {
                storage_baseline + CpuNodePower::xeon_node().fleet_power(*cores)
            }
            System::GpuPool { cards, gpu, .. } => storage_baseline + gpu.power() * *cards as f64,
            System::FpgaPool { cards, isp, .. } => storage_baseline + isp.power() * *cards as f64,
            System::Presto { units, isp } => storage_node_power(*units, isp.power()),
        }
    }
}

/// Steady-state network stage of a pooled accelerator: coalesced bulk
/// fetches in, tensors out, full-duplex link.
fn pool_net_stage(net: &NetworkModel, profile: &WorkloadProfile) -> Secs {
    let calls = profile.num_columns.div_ceil(POOL_FETCH_COALESCING);
    let inbound = net.rpc_time(calls, profile.raw_bytes);
    let outbound = net.rpc_time(1, profile.tensor_bytes);
    inbound.max(outbound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_datagen::RmConfig;

    fn profile(c: &RmConfig) -> WorkloadProfile {
        WorkloadProfile::from_config(c)
    }

    #[test]
    fn presto_beats_disagg32_loses_to_disagg64() {
        // Fig. 11: one SmartSSD beats 32 cores; 64 cores win back by ~27%.
        for c in RmConfig::all() {
            let p = profile(&c);
            let presto = System::presto_smartssd(1).throughput(&p);
            let d32 = System::disagg(32).throughput(&p);
            let d64 = System::disagg(64).throughput(&p);
            assert!(presto > d32, "{}: presto {presto:.0} vs d32 {d32:.0}", c.name);
            assert!(d64 > presto, "{}: d64 {d64:.0} vs presto {presto:.0}", c.name);
            let ratio = d64 / presto;
            assert!((1.05..=1.9).contains(&ratio), "{}: d64/presto {ratio:.2}", c.name);
        }
    }

    #[test]
    fn disagg_scales_linearly() {
        let p = profile(&RmConfig::rm3());
        let one = System::disagg(1).throughput(&p);
        let sixteen = System::disagg(16).throughput(&p);
        assert!((sixteen / one - 16.0).abs() < 1e-6);
    }

    #[test]
    fn presto_speedup_band_matches_fig12() {
        // Fig. 12: 9.6× average, 11.6× maximum single-worker speedup.
        let mut speedups = Vec::new();
        for c in RmConfig::all() {
            let p = profile(&c);
            let disagg = System::disagg(1).worker_latency(&p);
            let presto = System::presto_smartssd(1).worker_latency(&p);
            speedups.push(disagg / presto);
        }
        let mean = speedups.iter().sum::<f64>() / speedups.len() as f64;
        let max = speedups.iter().fold(0.0f64, |a, &b| a.max(b));
        assert!((8.0..=12.5).contains(&mean), "mean speedup {mean:.1}");
        assert!((10.0..=13.5).contains(&max), "max speedup {max:.1}");
    }

    #[test]
    fn presto_rpc_traffic_is_much_lower() {
        // Fig. 13: PreSto cuts RPC-invoked inter-node time by ~2.9×.
        let net = NetworkModel::poc();
        let mut ratios = Vec::new();
        for c in RmConfig::all() {
            let p = profile(&c);
            let disagg = System::disagg(1).rpc_account(&p).time_on(&net);
            let presto = System::presto_smartssd(1).rpc_account(&p).time_on(&net);
            ratios.push(disagg / presto);
        }
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!((1.8..=4.5).contains(&mean), "mean RPC reduction {mean:.2}");
    }

    #[test]
    fn colocation_slows_workers() {
        let p = profile(&RmConfig::rm5());
        let colo = System::colocated(1).per_worker_throughput(&p);
        let disagg = System::disagg(1).per_worker_throughput(&p);
        assert!(colo < disagg);
        assert!((colo / disagg - calib::cpu::COLOCATION_EFFICIENCY).abs() < 1e-9);
    }

    #[test]
    fn u280_pool_copy_share_near_half() {
        // Sec. VI-C: copying in/out of the disaggregated node ≈ 47.6% of
        // the U280's end-to-end preprocessing time.
        let p = profile(&RmConfig::rm5());
        let b = System::fpga_pool(1).worker_breakdown(&p);
        let copy = (b.extract_read + b.load).seconds();
        let share = copy / b.total().seconds();
        assert!((0.30..=0.65).contains(&share), "copy share {share:.2}");
    }

    #[test]
    fn fig16_ordering_holds() {
        // PreSto(SmartSSD) ≈ 2.5× A100; U280 pool ≈ PreSto(SmartSSD);
        // PreSto(U280) fastest.
        let p = profile(&RmConfig::rm5());
        let a100 = System::gpu_pool(1).throughput(&p);
        let u280 = System::fpga_pool(1).throughput(&p);
        let presto_ssd = System::presto_smartssd(1).throughput(&p);
        let presto_u280 = System::presto_u280().throughput(&p);
        assert!(presto_ssd > 1.5 * a100, "presto {presto_ssd:.0} vs a100 {a100:.0}");
        let ratio = presto_ssd / u280;
        assert!((0.7..=1.3).contains(&ratio), "presto/u280 {ratio:.2}");
        assert!(presto_u280 > presto_ssd);
    }

    #[test]
    fn power_ordering_matches_envelopes() {
        let presto = System::presto_smartssd(9).power();
        let disagg = System::disagg(367).power();
        assert!(disagg.raw() > 8.0 * presto.raw(), "disagg {disagg} vs presto {presto}");
    }

    #[test]
    fn stream_config_mirrors_parallelism() {
        let disagg = System::disagg(4).stream_config();
        assert_eq!(disagg.workers, 4);
        assert_eq!(disagg.capacity, 8);
        assert!(disagg.prefetch, "host CPUs double-buffer Extract");
        let presto = System::presto_smartssd(2).stream_config();
        assert_eq!(presto.workers, 2);
        assert!(!presto.prefetch, "ISP units overlap Extract on-card");
    }

    #[test]
    fn plan_placement_follows_the_device() {
        let mut c = RmConfig::rm1();
        c.batch_size = 8192;
        let plan = presto_ops::PreprocessPlan::from_config(&c, 1).expect("plan");
        let presto = System::presto_smartssd(1).plan_placement(&plan, 8192);
        assert!(presto.offloaded() > 0, "ISP system offloads the heavy stages");
        let disagg = System::disagg(4).plan_placement(&plan, 8192);
        assert_eq!(disagg.offloaded(), 0, "CPU pool keeps every stage on the host");
    }

    #[test]
    fn names_are_figure_faithful() {
        assert_eq!(System::disagg(64).name(), "Disagg(64)");
        assert_eq!(System::presto_smartssd(1).name(), "PreSto (SmartSSD)");
        assert_eq!(System::presto_u280().name(), "PreSto (U280)");
        assert_eq!(System::gpu_pool(1).name(), "A100");
        assert_eq!(System::fpga_pool(1).name(), "U280");
        assert_eq!(System::colocated(4).name(), "Co-located(4)");
        assert_eq!(System::presto_smartssd(3).name(), "PreSto (SmartSSD) x3");
    }
}
