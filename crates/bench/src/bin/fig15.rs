//! Fig. 15 — energy-efficiency (a) and cost-efficiency (b) of PreSto vs
//! the Disagg baseline at deployment scale.

use presto_bench::{banner, print_table};
use presto_metrics::efficiency::{fig15, mean};
use presto_metrics::TextTable;

fn main() {
    banner(
        "Fig. 15: energy-efficiency and cost-efficiency (8x A100 demand, 3-year TCO)",
        "11.3x avg / 15.1x max energy-efficiency; 4.3x avg / 5.6x max cost-efficiency",
    );
    let rows = fig15();
    let mut t = TextTable::new(vec![
        "model",
        "Disagg power (W)",
        "PreSto power (W)",
        "energy-eff gain",
        "Disagg cost ($)",
        "PreSto cost ($)",
        "cost-eff gain",
    ]);
    for r in &rows {
        t.row(vec![
            r.model.clone(),
            format!("{:.0}", r.disagg.power.raw()),
            format!("{:.0}", r.presto.power.raw()),
            format!("{:.1}x", r.energy_efficiency_gain),
            format!("{:.0}", r.disagg.total_cost_usd()),
            format!("{:.0}", r.presto.total_cost_usd()),
            format!("{:.1}x", r.cost_efficiency_gain),
        ]);
    }
    print_table(&t);
    let e: Vec<f64> = rows.iter().map(|r| r.energy_efficiency_gain).collect();
    let c: Vec<f64> = rows.iter().map(|r| r.cost_efficiency_gain).collect();
    println!(
        "energy-efficiency: mean {:.1}x, max {:.1}x (paper: 11.3x / 15.1x)",
        mean(&e),
        e.iter().fold(0.0f64, |a, &b| a.max(b))
    );
    println!(
        "cost-efficiency:   mean {:.1}x, max {:.1}x (paper: 4.3x / 5.6x)",
        mean(&c),
        c.iter().fold(0.0f64, |a, &b| a.max(b))
    );
}
