//! Fig. 6 — CPU utilization, memory-bandwidth utilization and LLC hit rate
//! of Bucketize / SigridHash / Log on RM1 and RM5.

use presto_bench::{banner, print_table};
use presto_core::experiments::fig6;
use presto_datagen::RmConfig;
use presto_metrics::{percent, TextTable};

fn main() {
    banner(
        "Fig. 6: microarchitectural characterization of the key ops",
        "high CPU utilization, <15% memory-bandwidth utilization, high LLC hit rates (~85% for Bucketize)",
    );
    // Full paper-scale batch drives the LLC trace simulation.
    let rows = fig6(RmConfig::rm1().batch_size);
    let mut t = TextTable::new(vec![
        "model",
        "op",
        "CPU utilization",
        "mem BW utilization",
        "LLC hit rate",
    ]);
    for (model, op, m) in &rows {
        t.row(vec![
            model.clone(),
            op.to_string(),
            percent(m.cpu_utilization),
            percent(m.mem_bw_utilization),
            percent(m.llc_hit_rate),
        ]);
    }
    print_table(&t);
    println!("Shape check: every op is compute-bound (high CPU utilization, low");
    println!("memory bandwidth); RM5 shows more memory traffic than RM1 because");
    println!("its decoded batch no longer fits the 16 MiB LLC slice.");
}
