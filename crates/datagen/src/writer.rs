//! Partitioned dataset layout: rows → partitions → columnar files → devices.
//!
//! Mirrors the paper's data-storage stage (Figure 1): a group of rows is
//! sharded into mutually exclusive partitions; each partition becomes an
//! independent columnar file placed contiguously on a single storage device,
//! so every mini-batch can be preprocessed device-locally (Section IV-B).

use crate::config::RmConfig;
use crate::table::{generate_batch, RowBatch};
use presto_columnar::{ColumnarError, FileWriter, MemBlob};

/// One partition: a columnar file and the device it lives on.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Partition index within the dataset.
    pub index: usize,
    /// Device (SSD / SmartSSD) hosting this partition's file.
    pub device: usize,
    /// Rows in the partition.
    pub rows: usize,
    /// The serialized columnar file.
    pub blob: MemBlob,
}

impl Partition {
    /// Size of the columnar file in bytes.
    #[must_use]
    pub fn byte_len(&self) -> usize {
        self.blob.as_bytes().len()
    }
}

/// A complete synthetic dataset sharded over `num_devices` storage devices.
#[derive(Debug, Clone)]
pub struct Dataset {
    config: RmConfig,
    partitions: Vec<Partition>,
    num_devices: usize,
}

impl Dataset {
    /// Generates `num_partitions` partitions of `rows_per_partition` rows
    /// each, placing them round-robin across `num_devices` devices.
    ///
    /// # Errors
    ///
    /// Propagates columnar write failures (practically impossible for valid
    /// configs, but surfaced rather than panicking).
    pub fn generate(
        config: &RmConfig,
        num_partitions: usize,
        rows_per_partition: usize,
        num_devices: usize,
        seed: u64,
    ) -> Result<Self, ColumnarError> {
        let num_devices = num_devices.max(1);
        let mut partitions = Vec::with_capacity(num_partitions);
        for index in 0..num_partitions {
            let batch = generate_batch(config, rows_per_partition, seed ^ (index as u64) << 17);
            let blob = write_partition(&batch)?;
            partitions.push(Partition {
                index,
                device: index % num_devices,
                rows: rows_per_partition,
                blob,
            });
        }
        Ok(Dataset { config: config.clone(), partitions, num_devices })
    }

    /// Like [`Dataset::generate`] with each partition written as
    /// mini-batch-aligned row groups of `rows_per_group` rows (the last
    /// group of a partition may be shorter) — the `PSTOCOL4` layout the
    /// shuffled random-access readers consume. Row content is identical to
    /// [`Dataset::generate`] with the same seed; only the grouping differs.
    ///
    /// # Errors
    ///
    /// Propagates columnar write failures.
    pub fn generate_grouped(
        config: &RmConfig,
        num_partitions: usize,
        rows_per_partition: usize,
        num_devices: usize,
        seed: u64,
        rows_per_group: usize,
    ) -> Result<Self, ColumnarError> {
        let num_devices = num_devices.max(1);
        let mut partitions = Vec::with_capacity(num_partitions);
        for index in 0..num_partitions {
            let batch = generate_batch(config, rows_per_partition, seed ^ (index as u64) << 17);
            let blob = write_partition_grouped(&batch, rows_per_group)?;
            partitions.push(Partition {
                index,
                device: index % num_devices,
                rows: rows_per_partition,
                blob,
            });
        }
        Ok(Dataset { config: config.clone(), partitions, num_devices })
    }

    /// The generating configuration.
    #[must_use]
    pub fn config(&self) -> &RmConfig {
        &self.config
    }

    /// All partitions in index order.
    #[must_use]
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// Number of storage devices the dataset spans.
    #[must_use]
    pub fn num_devices(&self) -> usize {
        self.num_devices
    }

    /// Partitions resident on one device, in index order.
    pub fn partitions_on(&self, device: usize) -> impl Iterator<Item = &Partition> {
        self.partitions.iter().filter(move |p| p.device == device)
    }

    /// Total rows across all partitions.
    #[must_use]
    pub fn total_rows(&self) -> usize {
        self.partitions.iter().map(|p| p.rows).sum()
    }

    /// Total stored bytes across all partitions.
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.partitions.iter().map(Partition::byte_len).sum()
    }
}

/// Serializes one row batch as a single-row-group columnar file.
///
/// # Errors
///
/// Propagates columnar write failures.
pub fn write_partition(batch: &RowBatch) -> Result<MemBlob, ColumnarError> {
    let mut writer = FileWriter::new(batch.schema().clone());
    writer.write_row_group(batch.columns())?;
    Ok(MemBlob::new(writer.finish()))
}

/// Serializes one row batch as a columnar file of `rows_per_group`-row
/// row groups, giving the file a real row-group index for shuffled random
/// access. Bit-identical content to [`write_partition`] per row; the
/// grouping only changes chunk boundaries and footer entries.
///
/// # Errors
///
/// Propagates columnar write failures.
pub fn write_partition_grouped(
    batch: &RowBatch,
    rows_per_group: usize,
) -> Result<MemBlob, ColumnarError> {
    let mut writer = FileWriter::new(batch.schema().clone()).with_group_rows(rows_per_group);
    writer.write_batch(batch.columns())?;
    Ok(MemBlob::new(writer.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_columnar::FileReader;

    fn tiny_config() -> RmConfig {
        let mut c = RmConfig::rm1();
        c.batch_size = 64;
        c
    }

    #[test]
    fn round_robin_placement() {
        let ds = Dataset::generate(&tiny_config(), 7, 16, 3, 1).unwrap();
        let devices: Vec<usize> = ds.partitions().iter().map(|p| p.device).collect();
        assert_eq!(devices, vec![0, 1, 2, 0, 1, 2, 0]);
        assert_eq!(ds.partitions_on(0).count(), 3);
        assert_eq!(ds.partitions_on(2).count(), 2);
    }

    #[test]
    fn partitions_roundtrip_through_reader() {
        let ds = Dataset::generate(&tiny_config(), 2, 32, 1, 5).unwrap();
        for p in ds.partitions() {
            let reader = FileReader::open(p.blob.clone()).unwrap();
            assert_eq!(reader.meta().total_rows(), 32);
            assert_eq!(reader.schema().len(), 1 + 13 + 26);
            let label = reader.read_projected(0, &["label"]).unwrap();
            assert_eq!(label[0].len(), 32);
        }
    }

    #[test]
    fn partitions_are_mutually_distinct() {
        let ds = Dataset::generate(&tiny_config(), 2, 16, 1, 9).unwrap();
        assert_ne!(ds.partitions()[0].blob.as_bytes(), ds.partitions()[1].blob.as_bytes());
    }

    #[test]
    fn totals_add_up() {
        let ds = Dataset::generate(&tiny_config(), 4, 8, 2, 1).unwrap();
        assert_eq!(ds.total_rows(), 32);
        assert_eq!(ds.total_bytes(), ds.partitions().iter().map(Partition::byte_len).sum());
        assert_eq!(ds.num_devices(), 2);
    }

    #[test]
    fn zero_devices_clamps_to_one() {
        let ds = Dataset::generate(&tiny_config(), 2, 4, 0, 1).unwrap();
        assert_eq!(ds.num_devices(), 1);
        assert!(ds.partitions().iter().all(|p| p.device == 0));
    }

    #[test]
    fn grouped_generation_matches_ungrouped_content() {
        let c = tiny_config();
        let flat = Dataset::generate(&c, 2, 50, 1, 3).unwrap();
        let grouped = Dataset::generate_grouped(&c, 2, 50, 1, 3, 16).unwrap();
        for (f, g) in flat.partitions().iter().zip(grouped.partitions()) {
            let fr = FileReader::open(f.blob.clone()).unwrap();
            let gr = FileReader::open(g.blob.clone()).unwrap();
            assert_eq!(fr.row_group_count(), 1);
            assert_eq!(gr.row_group_count(), 4, "50 rows at 16/group");
            assert_eq!(gr.meta().total_rows(), 50);
            // Same rows: concatenating the groups equals the single group.
            let whole = fr.read_row_group(0).unwrap();
            let mut per_column: Vec<Vec<presto_columnar::Array>> =
                (0..whole.len()).map(|_| Vec::new()).collect();
            for rg in 0..4 {
                for (col, array) in gr.read_row_group(rg).unwrap().into_iter().enumerate() {
                    per_column[col].push(array);
                }
            }
            for (col, parts) in per_column.into_iter().enumerate() {
                assert_eq!(
                    presto_columnar::column::concat_arrays(&parts).unwrap(),
                    whole[col],
                    "column {col}"
                );
            }
        }
    }

    #[test]
    fn dataset_is_deterministic() {
        let a = Dataset::generate(&tiny_config(), 2, 16, 1, 42).unwrap();
        let b = Dataset::generate(&tiny_config(), 2, 16, 1, 42).unwrap();
        for (x, y) in a.partitions().iter().zip(b.partitions()) {
            assert_eq!(x.blob.as_bytes(), y.blob.as_bytes());
        }
    }
}
