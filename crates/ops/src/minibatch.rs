//! Train-ready mini-batch assembly (the "format conversion" step, ❸ in
//! Figure 1 of the paper).
//!
//! The output mirrors what TorchRec consumes: a row-major dense matrix, a
//! set of jagged (variable-length) id features — the layout of TorchRec's
//! `KeyedJaggedTensor` — and the label vector.

use std::fmt;

/// Error assembling a mini-batch from mismatched parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Description of the mismatched dimension.
    pub detail: String,
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mini-batch shape error: {}", self.detail)
    }
}

impl std::error::Error for ShapeError {}

/// Row-major dense feature matrix (`rows × cols`).
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl DenseMatrix {
    /// Interleaves column-major normalized features into row-major layout.
    ///
    /// This transpose is the real work of format conversion: the GPU wants
    /// one contiguous per-sample feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when columns disagree in length.
    pub fn from_columns(columns: &[Vec<f32>], rows: usize) -> Result<Self, ShapeError> {
        for (i, col) in columns.iter().enumerate() {
            if col.len() != rows {
                return Err(ShapeError {
                    detail: format!("dense column {i} has {} rows, expected {rows}", col.len()),
                });
            }
        }
        let cols = columns.len();
        let mut data = vec![0.0f32; rows * cols];
        for (c, col) in columns.iter().enumerate() {
            for (r, &v) in col.iter().enumerate() {
                data[r * cols + c] = v;
            }
        }
        Ok(DenseMatrix { rows, cols, data })
    }

    /// Number of rows (samples).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of dense features.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// One sample's dense feature vector.
    ///
    /// # Panics
    ///
    /// Panics when `row >= rows()`.
    #[must_use]
    pub fn row(&self, row: usize) -> &[f32] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// The raw row-major buffer.
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }
}

/// One jagged id feature: row `i` spans
/// `values[offsets[i] as usize..offsets[i+1] as usize]`.
#[derive(Debug, Clone, PartialEq)]
pub struct JaggedFeature {
    /// Feature name (embedding-table key).
    pub name: String,
    /// Row offsets, `len == rows + 1`.
    pub offsets: Vec<u32>,
    /// Flattened normalized ids.
    pub values: Vec<i64>,
}

impl JaggedFeature {
    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Ids of one row.
    ///
    /// # Panics
    ///
    /// Panics when `row >= rows()`.
    #[must_use]
    pub fn row(&self, row: usize) -> &[i64] {
        &self.values[self.offsets[row] as usize..self.offsets[row + 1] as usize]
    }

    /// Internal consistency check.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] describing the violated invariant.
    pub fn validate(&self) -> Result<(), ShapeError> {
        if self.offsets.first() != Some(&0) {
            return Err(ShapeError { detail: format!("{}: offsets must start at 0", self.name) });
        }
        if self.offsets.windows(2).any(|w| w[1] < w[0]) {
            return Err(ShapeError { detail: format!("{}: offsets decrease", self.name) });
        }
        let last = *self.offsets.last().expect("checked first") as usize;
        if last != self.values.len() {
            return Err(ShapeError {
                detail: format!(
                    "{}: offsets end at {last} but {} values present",
                    self.name,
                    self.values.len()
                ),
            });
        }
        Ok(())
    }
}

/// A train-ready mini-batch: what the Load step ships to the trainer.
#[derive(Debug, Clone, PartialEq)]
pub struct MiniBatch {
    labels: Vec<i64>,
    dense: DenseMatrix,
    sparse: Vec<JaggedFeature>,
}

impl MiniBatch {
    /// Assembles and validates a mini-batch.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when any component disagrees on the row count
    /// or a jagged feature is internally inconsistent.
    pub fn new(
        labels: Vec<i64>,
        dense: DenseMatrix,
        sparse: Vec<JaggedFeature>,
    ) -> Result<Self, ShapeError> {
        let rows = labels.len();
        if dense.rows() != rows {
            return Err(ShapeError {
                detail: format!("dense matrix has {} rows, labels {rows}", dense.rows()),
            });
        }
        for feat in &sparse {
            if feat.rows() != rows {
                return Err(ShapeError {
                    detail: format!(
                        "feature {} has {} rows, labels {rows}",
                        feat.name,
                        feat.rows()
                    ),
                });
            }
            feat.validate()?;
        }
        Ok(MiniBatch { labels, dense, sparse })
    }

    /// Number of samples.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.labels.len()
    }

    /// The row window `start..start + rows` as a new mini-batch: labels and
    /// dense rows copied contiguously (the dense matrix is row-major),
    /// jagged features with rebased offsets.
    ///
    /// Preprocessing is row-wise, so a row group's mini-batch equals the
    /// matching window of its whole partition's mini-batch — the
    /// group-order normalization the shuffled-epoch determinism tests pin.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the window exceeds the batch.
    pub fn slice_rows(&self, start: usize, rows: usize) -> Result<MiniBatch, ShapeError> {
        let end =
            start.checked_add(rows).filter(|&e| e <= self.rows()).ok_or_else(|| ShapeError {
                detail: format!(
                    "row window {start}+{rows} exceeds mini-batch of {} rows",
                    self.rows()
                ),
            })?;
        let labels = self.labels[start..end].to_vec();
        let dense = DenseMatrix {
            rows,
            cols: self.dense.cols,
            data: self.dense.data[start * self.dense.cols..end * self.dense.cols].to_vec(),
        };
        let sparse = self
            .sparse
            .iter()
            .map(|f| {
                let base = f.offsets[start];
                JaggedFeature {
                    name: f.name.clone(),
                    offsets: f.offsets[start..=end].iter().map(|&o| o - base).collect(),
                    values: f.values[f.offsets[start] as usize..f.offsets[end] as usize].to_vec(),
                }
            })
            .collect();
        MiniBatch::new(labels, dense, sparse)
    }

    /// Click labels.
    #[must_use]
    pub fn labels(&self) -> &[i64] {
        &self.labels
    }

    /// The dense feature matrix.
    #[must_use]
    pub fn dense(&self) -> &DenseMatrix {
        &self.dense
    }

    /// All jagged id features (raw-normalized first, then generated).
    #[must_use]
    pub fn sparse(&self) -> &[JaggedFeature] {
        &self.sparse
    }

    /// Jagged feature by name.
    #[must_use]
    pub fn sparse_by_name(&self, name: &str) -> Option<&JaggedFeature> {
        self.sparse.iter().find(|f| f.name == name)
    }

    /// Approximate serialized size in bytes — the Load transfer volume.
    #[must_use]
    pub fn byte_size(&self) -> usize {
        self.labels.len() * 8
            + self.dense.data().len() * 4
            + self.sparse.iter().map(|f| f.offsets.len() * 4 + f.values.len() * 8).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jagged(name: &str, lists: &[&[i64]]) -> JaggedFeature {
        let mut offsets = vec![0u32];
        let mut values = Vec::new();
        for l in lists {
            values.extend_from_slice(l);
            offsets.push(values.len() as u32);
        }
        JaggedFeature { name: name.into(), offsets, values }
    }

    #[test]
    fn dense_matrix_transposes_correctly() {
        let m = DenseMatrix::from_columns(&[vec![1.0, 2.0], vec![10.0, 20.0]], 2).unwrap();
        assert_eq!(m.row(0), &[1.0, 10.0]);
        assert_eq!(m.row(1), &[2.0, 20.0]);
        assert_eq!((m.rows(), m.cols()), (2, 2));
    }

    #[test]
    fn dense_matrix_rejects_ragged_columns() {
        assert!(DenseMatrix::from_columns(&[vec![1.0], vec![1.0, 2.0]], 1).is_err());
    }

    #[test]
    fn zero_column_matrix_is_fine() {
        let m = DenseMatrix::from_columns(&[], 3).unwrap();
        assert_eq!((m.rows(), m.cols()), (3, 0));
        assert_eq!(m.row(1), &[] as &[f32]);
    }

    #[test]
    fn minibatch_assembly_and_access() {
        let dense = DenseMatrix::from_columns(&[vec![0.5, 1.5]], 2).unwrap();
        let f = jagged("s0", &[&[1, 2], &[3]]);
        let mb = MiniBatch::new(vec![0, 1], dense, vec![f]).unwrap();
        assert_eq!(mb.rows(), 2);
        assert_eq!(mb.sparse_by_name("s0").unwrap().row(0), &[1, 2]);
        assert!(mb.sparse_by_name("missing").is_none());
        assert!(mb.byte_size() > 0);
    }

    #[test]
    fn minibatch_rejects_row_mismatch() {
        let dense = DenseMatrix::from_columns(&[vec![0.5]], 1).unwrap();
        assert!(MiniBatch::new(vec![0, 1], dense, vec![]).is_err());
        let dense = DenseMatrix::from_columns(&[vec![0.5, 1.0]], 2).unwrap();
        let f = jagged("s0", &[&[1]]);
        assert!(MiniBatch::new(vec![0, 1], dense, vec![f]).is_err());
    }

    #[test]
    fn jagged_validation_catches_corruption() {
        let mut f = jagged("s", &[&[1], &[2, 3]]);
        f.offsets[0] = 1;
        assert!(f.validate().is_err());
        let mut f = jagged("s", &[&[1], &[2]]);
        f.offsets[1] = 9;
        assert!(f.validate().is_err());
        let mut f = jagged("s", &[&[1, 2]]);
        f.values.pop();
        assert!(f.validate().is_err());
    }

    #[test]
    fn byte_size_tracks_components() {
        let dense = DenseMatrix::from_columns(&[vec![0.0; 4]], 4).unwrap();
        let f = jagged("s", &[&[1], &[], &[2, 3], &[]]);
        let mb = MiniBatch::new(vec![0; 4], dense, vec![f]).unwrap();
        assert_eq!(mb.byte_size(), 4 * 8 + 4 * 4 + 5 * 4 + 3 * 8);
    }
}
