//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property tests
//! use: the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_flat_map` / `prop_filter`, [`arbitrary::any`], [`collection::vec`],
//! [`sample::Index`], [`prop_oneof!`] and the `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its inputs (via the panic
//!   message's case number, which is deterministic) but is not minimized.
//! * **Deterministic seeding.** Case `k` of test `t` always sees the same
//!   inputs, derived from `hash(module_path::t) ⊕ k`, so failures reproduce
//!   across runs without a persistence file.
//! * `any::<f32>()` / `any::<f64>()` generate **finite** values only
//!   (including zeros, subnormals and extremes); NaN/∞ behavior is covered
//!   by explicit unit tests in the workspace.
//!
//! The tests themselves are source-compatible with upstream proptest.

pub mod test_runner {
    //! Test configuration, error type and the deterministic RNG.

    /// Per-`proptest!` block configuration (case count only).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// Configuration running `cases` cases per test.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Failure raised by `prop_assert*` inside a test body.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        #[must_use]
        pub fn fail(message: String) -> Self {
            TestCaseError { message }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic generator feeding all strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case `case` of the test uniquely named by `test_path`.
        #[must_use]
        pub fn for_case(test_path: &str, case: u32) -> Self {
            // FNV-1a over the test path, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h ^ (u64::from(case) << 32) ^ u64::from(case) }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Rejects generated values failing `f`, retrying (the `reason` is
        /// reported if the filter rejects essentially everything).
        fn prop_filter<R, F>(self, reason: R, f: F) -> Filter<Self, F>
        where
            R: std::fmt::Display,
            F: Fn(&Self::Value) -> bool,
            Self: Sized,
        {
            Filter { inner: self, reason: reason.to_string(), f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A heap-allocated, type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: String,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let candidate = self.inner.generate(rng);
                if (self.f)(&candidate) {
                    return candidate;
                }
            }
            panic!("prop_filter {:?} rejected 10000 consecutive values", self.reason);
        }
    }

    /// Uniform choice between same-valued strategies (see [`prop_oneof!`]).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union over `options`; must be non-empty.
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof of zero strategies");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let pick = rng.below(self.options.len() as u64) as usize;
            self.options[pick].generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty => $u:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // Cast through the same-width unsigned type so signed
                    // widths neither sign-extend nor overflow.
                    let width = self.end.wrapping_sub(self.start) as $u as u64;
                    self.start.wrapping_add(rng.below(width) as $t)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty inclusive range strategy");
                    let width = (hi.wrapping_sub(lo) as $u as u64).wrapping_add(1);
                    if width == 0 {
                        // Full-domain u64-wide range.
                        return lo.wrapping_add(rng.next_u64() as $t);
                    }
                    lo.wrapping_add(rng.below(width) as $t)
                }
            }
        )*};
    }

    impl_int_range_strategy!(
        u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
        i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
    );

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let u = rng.unit_f64() as $t;
                    let v = self.start + u * (self.end - self.start);
                    // Guard against rounding up to the excluded endpoint.
                    if v >= self.end { self.start } else { v }
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}

pub mod arbitrary {
    //! Default strategies per type ([`any`]).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The canonical strategy for `T` (see [`Arbitrary`]).
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    // 1 in 8 draws lands on a boundary value; the rest are
                    // uniform random bits.
                    if rng.below(8) == 0 {
                        const EDGES: [$t; 4] = [0, 1, <$t>::MIN, <$t>::MAX];
                        EDGES[rng.below(4) as usize]
                    } else {
                        rng.next_u64() as $t
                    }
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_arbitrary_float {
        ($t:ty, $bits:ty, $shift:expr) => {
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    // Uniform bit patterns (covers subnormals, extremes and
                    // both zeros), filtered to finite values; see crate docs.
                    loop {
                        let v = <$t>::from_bits((rng.next_u64() >> $shift) as $bits);
                        if v.is_finite() {
                            return v;
                        }
                    }
                }
            }
        };
    }

    impl_arbitrary_float!(f32, u32, 32);
    impl_arbitrary_float!(f64, u64, 0);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            crate::sample::Index::from_unit(rng.unit_f64())
        }
    }
}

pub mod collection {
    //! Collection strategies ([`vec()`]).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max_inclusive: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { min: *r.start(), max_inclusive: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_inclusive: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[must_use]
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_inclusive - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Index sampling helpers.

    /// A position sampled uniformly from any later-specified collection.
    #[derive(Debug, Clone, Copy)]
    pub struct Index {
        unit: f64,
    }

    impl Index {
        pub(crate) fn from_unit(unit: f64) -> Self {
            Index { unit }
        }

        /// Resolves the index against a collection of length `len`.
        ///
        /// # Panics
        ///
        /// Panics when `len == 0`.
        #[must_use]
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            ((self.unit * len as f64) as usize).min(len - 1)
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::collection::SizeRange;
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests: each `fn name(bindings in strategies) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$attr:meta])+ fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])+
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let strategy = ($($strat,)+);
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::generate(&strategy, &mut rng);
                    #[allow(unused_mut)]
                    let mut body = move || -> ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    if let ::core::result::Result::Err(e) = body() {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a property test body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Asserts inequality inside a property test body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn deterministic_generation_per_case() {
        let strat = crate::collection::vec(0u64..100, 1..10);
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let v = (5u64..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let f = (-2.0f32..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let i = (1u8..=255).generate(&mut rng);
            assert!(i >= 1);
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = TestRng::for_case("lens", 0);
        let strat = crate::collection::vec(any::<i64>(), 2..5);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let exact = crate::collection::vec(any::<i64>(), 7..=7);
        assert_eq!(exact.generate(&mut rng).len(), 7);
    }

    #[test]
    fn floats_are_finite() {
        let mut rng = TestRng::for_case("floats", 0);
        for _ in 0..10_000 {
            assert!(any::<f32>().generate(&mut rng).is_finite());
            assert!(any::<f64>().generate(&mut rng).is_finite());
        }
    }

    #[test]
    fn oneof_covers_all_options() {
        let strat = prop_oneof![0u64..1, 10u64..11, 20u64..21];
        let mut rng = TestRng::for_case("oneof", 0);
        let mut seen = [false; 3];
        for _ in 0..200 {
            match strat.generate(&mut rng) {
                0 => seen[0] = true,
                10 => seen[1] = true,
                20 => seen[2] = true,
                other => panic!("unexpected value {other}"),
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn index_stays_in_bounds() {
        let mut rng = TestRng::for_case("idx", 0);
        for _ in 0..1000 {
            let i = any::<crate::sample::Index>().generate(&mut rng);
            assert!(i.index(7) < 7);
            assert_eq!(i.index(1), 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_patterns((a, b) in (0u64..10, 10u64..20), mut v in crate::collection::vec(0i64..5, 0..4)) {
            v.sort_unstable();
            prop_assert!(a < b);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(a, b);
        }
    }

    proptest! {
        #[test]
        fn macro_default_config_works(x in any::<u32>()) {
            prop_assert!(u64::from(x) <= u64::from(u32::MAX));
        }
    }
}
