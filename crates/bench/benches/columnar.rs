//! Criterion benches of the columnar substrate: encode, decode and
//! projected reads — the real work the Extract stage performs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use presto_columnar::{FileReader, MemBlob};
use presto_datagen::{generate_batch, write_partition, RmConfig};
use std::hint::black_box;

fn small_config(name: &str) -> RmConfig {
    let mut c = match name {
        "rm1" => RmConfig::rm1(),
        _ => RmConfig::rm2(),
    };
    c.batch_size = 2048;
    c
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("columnar_encode");
    for name in ["rm1", "rm2"] {
        let config = small_config(name);
        let batch = generate_batch(&config, 2048, 7);
        group.throughput(Throughput::Bytes(batch.byte_size() as u64));
        group.bench_with_input(BenchmarkId::new("model", name), &batch, |bench, batch| {
            bench.iter(|| black_box(write_partition(black_box(batch)).expect("encodes")));
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("columnar_decode");
    for name in ["rm1", "rm2"] {
        let config = small_config(name);
        let batch = generate_batch(&config, 2048, 7);
        let blob = write_partition(&batch).expect("encodes");
        group.throughput(Throughput::Bytes(blob.as_bytes().len() as u64));
        group.bench_with_input(BenchmarkId::new("model", name), &blob, |bench, blob| {
            bench.iter(|| {
                let reader = FileReader::open(black_box(blob.clone())).expect("opens");
                black_box(reader.read_row_group(0).expect("decodes"))
            });
        });
    }
    group.finish();
}

fn bench_projection(c: &mut Criterion) {
    // The columnar advantage: reading 2 of 40 columns must be much cheaper
    // than reading all of them.
    let config = small_config("rm1");
    let batch = generate_batch(&config, 2048, 9);
    let blob = write_partition(&batch).expect("encodes");
    let mut group = c.benchmark_group("columnar_projection");
    group.bench_function("two_columns", |bench| {
        bench.iter(|| {
            let reader = FileReader::open(black_box(blob.clone())).expect("opens");
            black_box(reader.read_projected(0, &["dense_0", "sparse_0"]).expect("projects"))
        });
    });
    group.bench_function("all_columns", |bench| {
        bench.iter(|| {
            let reader = FileReader::open(black_box(blob.clone())).expect("opens");
            black_box(reader.read_row_group(0).expect("reads"))
        });
    });
    group.finish();
}

fn bench_mem_reader_open(c: &mut Criterion) {
    let config = small_config("rm1");
    let batch = generate_batch(&config, 2048, 11);
    let blob = write_partition(&batch).expect("encodes");
    c.bench_function("columnar_open_footer", |bench| {
        bench.iter(|| black_box(FileReader::open(black_box(blob.clone())).expect("opens")));
    });
    let _ = MemBlob::new(vec![]);
}

/// Short measurement windows keep `cargo bench --workspace` to a few
/// minutes while staying statistically useful.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_encode, bench_decode, bench_projection, bench_mem_reader_open
}
criterion_main!(benches);
