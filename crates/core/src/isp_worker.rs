//! Functional emulation of one PreSto ISP worker (Fig. 10's dataflow), on
//! real data.
//!
//! The performance layer prices the accelerator analytically; this module
//! *executes* it: raw bytes are "P2P-extracted" from the partition blob,
//! decoded by the decoder unit, then streamed through the compiled plan's
//! operator stages in fixed-size chunks with two on-chip feature buffers
//! per unit (double buffering), exactly the structure of Section IV-C. The
//! worker drives the *same* compiled
//! [`PreprocessPlan::stages`](presto_ops::PreprocessPlan::stages) as the
//! host executor — through [`preprocess_batch_owned_chunked`] with the
//! on-chip buffer size as the chunk bound — so any operator graph
//! (canonical or not) runs in storage with output bit-identical to the host
//! CPU pipeline by construction, which is the correctness argument for the
//! offload.
//!
//! The worker shares the host executor's zero-copy substrate so CPU-vs-ISP
//! ablations compare transform dataflow, not allocator behavior: Extract
//! goes through `read_projected_with` + the caller's [`ScratchSpace`]
//! (recycled chunk staging, lazy plain-page decode), and columns whose stage
//! [consumes them](presto_ops::CompiledStage::consumes_raw) are normalized
//! in place when uniquely held.
//!
//! [`IspBatchStream::spawn`] (or `Fleet::Isp.spawn` through the unified
//! fleet API) drives a fleet of these workers as a streaming producer
//! ([`IspBatchStream`], a [`BatchSource`]), so the ISP path feeds a
//! consuming [`crate::pipeline::Trainer`] end to end exactly like the host
//! CPU executor does — the ISP-vs-CPU comparison is measured at the
//! trainer, not at a `Vec` drain.
//!
//! # Failure semantics
//!
//! [`FleetConfig::recovery`] governs the fleet's failure handling and
//! defaults to fail-fast on every fleet (first error poisons the run,
//! fleet halts within one partition). Under a recovery policy:
//!
//! * Retryable errors (storage-side: I/O faults, CRC mismatches from
//!   corrupt pages, truncated reads) are retried per partition with capped
//!   exponential backoff; deterministic plan/schema errors surface
//!   immediately.
//! * Each ISP device carries a consecutive-failure circuit breaker. A
//!   quarantined device's partitions — and any partition whose retry
//!   budget a retryable error exhausts — **fail over to the host
//!   preprocessing path** when the policy enables it: a dedicated failover
//!   thread re-reads the partition through the host's independent block-I/O
//!   path ([`presto_columnar::MemBlob::without_faults`] models the intact
//!   media behind the dead accelerator/P2P link) and runs the *same*
//!   compiled plan on the CPU. The graph runner is bit-identical on both
//!   sides, so failover output provably equals the ISP output — the chaos
//!   suite asserts this batch-for-batch.
//! * Failed-over batches are tagged `via_failover` and skip P2P byte
//!   accounting (no bytes crossed the dead link). Every claimed partition
//!   ends as exactly one `Ok` batch or one provenance-tagged `Err`
//!   ([`PreprocessError::At`](presto_ops::PreprocessError)); the
//!   [`RunReport`] from
//!   [`IspBatchStream::run_report`] accounts for all of them
//!   (`delivered + failed_partitions == partitions`).

use crossbeam_channel::{bounded, Receiver, Sender};
use presto_columnar::{BlobRead, ColumnarError, FileReader};
use presto_datagen::Partition;
use presto_ops::executor::{extract_batch_from_reader, PreprocessError, StageTimings};
use presto_ops::minibatch::MiniBatch;
use presto_ops::plan::PreprocessPlan;
use presto_ops::recovery::{RecoveryTracker, RetryPolicy, RunReport};
use presto_ops::stream::{FleetConfig, StreamStats, StreamedBatch};
use presto_ops::{preprocess_batch_owned_chunked, preprocess_partition_with, ScratchSpace};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crate::pipeline::BatchSource;

/// On-chip feature-buffer capacity in elements. The SmartSSD build's
/// per-unit buffers hold a few KiB; 2 KiB of 4-byte elements keeps chunks
/// realistic without dominating emulation time.
pub const FEATURE_BUFFER_ELEMS: usize = 512;

/// Statistics of one emulated device run, for cross-checking against the
/// analytic model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IspRunStats {
    /// Bytes moved over the emulated P2P link.
    pub p2p_bytes: u64,
    /// Chunks processed by the feature-generation unit (Bucketize).
    pub bucketize_chunks: u64,
    /// Chunks processed by the normalization units (SigridHash, MapId,
    /// LogNorm).
    pub normalize_chunks: u64,
    /// Chunks attributed to the list-restructuring unit (FirstX, NGram).
    /// Accounting-only: these ops execute whole-column and the count
    /// models the streaming unit's traffic (see
    /// [`UnitStats::restructure_chunks`](presto_ops::UnitStats)).
    pub restructure_chunks: u64,
    /// Total elements transformed.
    pub elements: u64,
}

/// One emulated in-storage preprocessing worker.
#[derive(Debug)]
pub struct IspWorker {
    plan: PreprocessPlan,
    chunk_elems: usize,
}

impl IspWorker {
    /// Creates a worker executing `plan` with the default buffer size.
    #[must_use]
    pub fn new(plan: PreprocessPlan) -> Self {
        IspWorker { plan, chunk_elems: FEATURE_BUFFER_ELEMS }
    }

    /// Overrides the on-chip buffer capacity (elements per chunk).
    ///
    /// # Panics
    ///
    /// Panics when `chunk_elems == 0`.
    #[must_use]
    pub fn with_buffer_elems(mut self, chunk_elems: usize) -> Self {
        assert!(chunk_elems > 0, "feature buffer must hold at least one element");
        self.chunk_elems = chunk_elems;
        self
    }

    /// The plan this worker executes.
    #[must_use]
    pub fn plan(&self) -> &PreprocessPlan {
        &self.plan
    }

    /// Runs the full in-storage pipeline over one partition blob with a
    /// fresh scratch; see [`IspWorker::preprocess_with`].
    ///
    /// # Errors
    ///
    /// Propagates storage/decode failures and missing-column errors.
    pub fn preprocess<B: BlobRead>(
        &self,
        blob: B,
    ) -> Result<(MiniBatch, IspRunStats), PreprocessError> {
        self.preprocess_with(blob, &mut ScratchSpace::new())
    }

    /// Runs the full in-storage pipeline over one partition blob:
    /// P2P extract → decoder unit → chunked operator stages → output
    /// assembly. Extract stages through the caller's [`ScratchSpace`]
    /// (recycled across partitions, like the host workers); the stages are
    /// the plan's compiled operator graph, streamed through
    /// `chunk_elems`-sized on-chip feature buffers, transforming uniquely
    /// owned decode buffers in place whenever the storage backend allows
    /// it.
    ///
    /// # Errors
    ///
    /// Propagates storage/decode failures and missing-column errors.
    pub fn preprocess_with<B: BlobRead>(
        &self,
        blob: B,
        scratch: &mut ScratchSpace,
    ) -> Result<(MiniBatch, IspRunStats), PreprocessError> {
        let mut stats = IspRunStats::default();

        // P2P extract: the FPGA reads the column chunks it needs directly
        // from the SSD. We read exactly the projected ranges, counting the
        // bytes the P2P link would carry.
        let reader = FileReader::open(blob)?;
        stats.p2p_bytes = {
            let needed = self.plan.required_columns();
            let meta = reader.meta();
            let mut bytes = 0u64;
            for rg in &meta.row_groups {
                for name in needed {
                    let idx = meta
                        .schema
                        .index_of(name)
                        .ok_or_else(|| PreprocessError::BadColumn { column: name.clone() })?;
                    bytes += rg.columns[idx].byte_len;
                }
            }
            bytes
        };

        // Decoder unit: columnar pages -> on-card feature buffers, staged
        // through the worker's recycled Extract scratch (zero staging
        // allocation once warm; in-memory blobs decode lazily).
        let batch = extract_batch_from_reader(&self.plan, &reader, scratch.read_scratch())?;

        // Generation/normalization/restructuring units: the compiled
        // stages, each op streamed through the on-chip feature buffers —
        // one chunk transforms while the previous one's results drain
        // (double buffering), which is why chunking never changes results.
        let (mini_batch, _, unit_stats) =
            preprocess_batch_owned_chunked(&self.plan, batch, self.chunk_elems)?;
        stats.bucketize_chunks = unit_stats.generation_chunks;
        stats.normalize_chunks = unit_stats.normalize_chunks;
        stats.restructure_chunks = unit_stats.restructure_chunks;
        stats.elements = unit_stats.elements;
        Ok((mini_batch, stats))
    }
}

// ---------------------------------------------------------------------------
// Streaming ISP fleet: the in-storage producer side of the trainer loop.
// ---------------------------------------------------------------------------

/// State shared by the ISP fleet of one streaming run.
#[derive(Debug)]
struct IspShared {
    plan: PreprocessPlan,
    partitions: Vec<Partition>,
    /// Next unclaimed partition (each ISP unit owns the partitions resident
    /// on it in a real deployment; the emulation claims them in order).
    cursor: AtomicUsize,
    /// Recovery policy enforcement and bookkeeping (retries, quarantine,
    /// failover, the event log behind [`RunReport`]).
    tracker: RecoveryTracker,
    stop: AtomicBool,
    completed: AtomicUsize,
    p2p_bytes: AtomicU64,
    /// Stream start; origin of every delivery (`arrived`) stamp.
    started: Instant,
}

impl IspShared {
    /// Sends one finished batch to the consumer; returns false when the
    /// consumer is gone.
    fn deliver_ok(
        &self,
        tx: &Sender<IspItem>,
        pos: usize,
        batch: MiniBatch,
        timings: StageTimings,
        attempts: u32,
        via_failover: bool,
    ) -> bool {
        let partition = &self.partitions[pos];
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.tracker.note_delivered(self.tracker.slot_of(partition.device), pos, via_failover);
        let item = StreamedBatch {
            partition: pos,
            group: 0,
            device: partition.device,
            stolen: false,
            batch,
            timings,
            // Delivery stamp: the supply process, unthrottled by the
            // consumer (matches the host executor's semantics).
            arrived: self.started.elapsed(),
            attempts,
            via_failover,
        };
        tx.send(Ok(item)).is_ok()
    }

    /// Surfaces one partition's error (tagged with its failure site) to
    /// the consumer; returns false when the fleet should stop (fail-fast
    /// policy or consumer gone).
    fn deliver_err(&self, tx: &Sender<IspItem>, pos: usize, e: PreprocessError) -> bool {
        let partition = &self.partitions[pos];
        self.tracker.note_failed(self.tracker.slot_of(partition.device), pos);
        let e = e.with_location(pos, partition.device);
        if self.tracker.policy().fail_fast {
            // Raise the stop flag before the (possibly blocking) send so
            // sibling units halt within one partition.
            self.stop.store(true, Ordering::Relaxed);
            let _ = tx.send(Err(e));
            false
        } else {
            tx.send(Err(e)).is_ok()
        }
    }
}

type IspItem = Result<StreamedBatch, PreprocessError>;

/// Streams `partitions` through `workers` emulated ISP devices with the
/// legacy fail-fast policy; see [`IspBatchStream::spawn`].
#[deprecated(since = "0.8.0", note = "use `IspBatchStream::spawn` or `Fleet::Isp.spawn`")]
#[must_use]
pub fn stream_isp_workers(
    plan: &PreprocessPlan,
    partitions: &[Partition],
    workers: usize,
    capacity: usize,
) -> IspBatchStream {
    IspBatchStream::spawn(plan, partitions, &FleetConfig::new(workers, capacity))
}

/// Streams `partitions` through `workers` emulated ISP devices with an
/// explicit [`RetryPolicy`]; see [`IspBatchStream::spawn`].
#[deprecated(since = "0.8.0", note = "use `IspBatchStream::spawn` or `Fleet::Isp.spawn`")]
#[must_use]
pub fn stream_isp_workers_with(
    plan: &PreprocessPlan,
    partitions: &[Partition],
    workers: usize,
    capacity: usize,
    recovery: &RetryPolicy,
) -> IspBatchStream {
    IspBatchStream::spawn(
        plan,
        partitions,
        &FleetConfig::new(workers, capacity).with_recovery(recovery.clone()),
    )
}

/// One ISP unit's body: claim partitions off the global cursor, run the
/// in-storage pipeline with the policy's retry loop, and route failures to
/// retry, failover, or the consumer.
fn isp_unit_loop(shared: &IspShared, tx: &Sender<IspItem>, failover_tx: &Sender<usize>) {
    let worker = IspWorker::new(shared.plan.clone());
    let mut scratch = ScratchSpace::new();
    let policy = shared.tracker.policy().clone();
    while !shared.stop.load(Ordering::Relaxed) {
        let pos = shared.cursor.fetch_add(1, Ordering::Relaxed);
        let Some(partition) = shared.partitions.get(pos) else { break };
        let slot = shared.tracker.slot_of(partition.device);

        // Circuit open: don't even attempt the device. Fail over when the
        // policy allows, otherwise surface a tagged error — never silence.
        if shared.tracker.is_quarantined(slot) {
            if policy.failover {
                shared.tracker.note_failover(slot, pos);
                if failover_tx.send(pos).is_err() {
                    break;
                }
                continue;
            }
            let e = PreprocessError::Extract(ColumnarError::Io {
                detail: format!(
                    "ISP device {} quarantined (circuit breaker open)",
                    partition.device
                ),
            });
            if !shared.deliver_err(tx, pos, e) {
                break;
            }
            continue;
        }

        // Attempt loop: retry retryable errors with capped exponential
        // backoff until the budget, the breaker, or the stop flag says
        // otherwise.
        let mut attempt = 1u32;
        let outcome = loop {
            let t0 = Instant::now();
            let result = worker.preprocess_with(partition.blob.clone(), &mut scratch);
            shared.tracker.check_straggler(slot, pos, t0.elapsed());
            match result {
                Ok(ok) => break Ok((ok, attempt)),
                Err(e) => {
                    shared.tracker.note_fault(slot, pos);
                    let retry = e.is_retryable()
                        && attempt < policy.max_attempts
                        && !shared.tracker.is_quarantined(slot)
                        && !shared.stop.load(Ordering::Relaxed);
                    if !retry {
                        break Err(e);
                    }
                    attempt += 1;
                    let backoff = shared.tracker.note_retry(slot, pos, attempt);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                }
            }
        };

        match outcome {
            Ok(((batch, stats), attempts)) => {
                shared.p2p_bytes.fetch_add(stats.p2p_bytes, Ordering::Relaxed);
                if !shared.deliver_ok(tx, pos, batch, StageTimings::default(), attempts, false) {
                    break;
                }
            }
            // A retryable error that survived the retry loop means the
            // device (or its link) is gone for this partition; the media
            // behind it is intact, so the host path can still serve it.
            Err(e) if e.is_retryable() && policy.failover => {
                shared.tracker.note_failover(slot, pos);
                if failover_tx.send(pos).is_err() {
                    break;
                }
            }
            Err(e) => {
                if !shared.deliver_err(tx, pos, e) {
                    break;
                }
            }
        }
    }
}

/// The host-path failover body: partitions whose ISP device died are
/// re-read through the host's independent block-I/O path (pristine media —
/// [`presto_columnar::MemBlob::without_faults`]) and preprocessed on the
/// CPU with the same compiled plan. Output is bit-identical to the ISP
/// path by construction; no P2P bytes are counted (nothing crossed the
/// dead link). Exits when every unit has dropped its failover sender.
fn host_failover_loop(shared: &IspShared, tx: &Sender<IspItem>, failover_rx: &Receiver<usize>) {
    let mut scratch = ScratchSpace::new();
    while let Ok(pos) = failover_rx.recv() {
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        let blob = shared.partitions[pos].blob.without_faults();
        match preprocess_partition_with(&shared.plan, blob, &mut scratch) {
            Ok((batch, timings)) => {
                if !shared.deliver_ok(tx, pos, batch, timings, 1, true) {
                    break;
                }
            }
            Err(e) => {
                if !shared.deliver_err(tx, pos, e) {
                    break;
                }
            }
        }
    }
}

/// The consumer's end of a streaming ISP run: an iterator of
/// `Result<StreamedBatch, PreprocessError>` in completion order.
/// Implements [`BatchSource`], so a [`crate::pipeline::Trainer`] consumes
/// it exactly like the host executor's stream. Dropping the stream stops
/// the fleet and joins every worker.
#[derive(Debug)]
pub struct IspBatchStream {
    rx: Option<Receiver<IspItem>>,
    handles: Vec<JoinHandle<()>>,
    shared: Arc<IspShared>,
    workers: usize,
    capacity: usize,
}

impl IspBatchStream {
    /// Streams `partitions` through `config.workers` emulated ISP devices
    /// into a `config.capacity`-bounded channel — the in-storage
    /// counterpart of the host fleet's
    /// [`BatchStream::spawn`](presto_ops::BatchStream::spawn), so
    /// ISP-vs-CPU comparisons both run through the same consuming
    /// [`crate::pipeline::Trainer`] instead of draining into a `Vec`.
    ///
    /// Each worker owns one [`IspWorker`] (decoder +
    /// generation/normalization units) and a recycled [`ScratchSpace`];
    /// finished mini-batches flow through the bounded channel with
    /// producer back-pressure. Failure handling follows
    /// [`FleetConfig::recovery`] (fail-fast by default, like every fleet)
    /// — see the module docs for the retry/quarantine/failover semantics.
    /// The `prefetch`, `host_workers` and `link_capacity` knobs do not
    /// apply to this fleet and are ignored.
    #[must_use]
    pub fn spawn(
        plan: &PreprocessPlan,
        partitions: &[Partition],
        config: &FleetConfig,
    ) -> IspBatchStream {
        let workers = config.workers.max(1).min(partitions.len().max(1));
        let capacity = config.capacity.max(1);
        let devices: Vec<usize> = partitions.iter().map(|p| p.device).collect();
        let shared = Arc::new(IspShared {
            plan: plan.clone(),
            partitions: partitions.to_vec(),
            cursor: AtomicUsize::new(0),
            tracker: RecoveryTracker::new(config.recovery.clone(), &devices, partitions.len()),
            stop: AtomicBool::new(false),
            completed: AtomicUsize::new(0),
            p2p_bytes: AtomicU64::new(0),
            started: Instant::now(),
        });
        let (tx, rx) = bounded::<IspItem>(capacity);
        // Failover queue: each partition is enqueued at most once, so the
        // bound can never block a sender.
        let (failover_tx, failover_rx) = bounded::<usize>(partitions.len().max(1));
        let mut handles = Vec::with_capacity(workers + 1);
        for unit in 0..workers {
            let shared = Arc::clone(&shared);
            let tx = tx.clone();
            let failover_tx = failover_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("presto-isp-{unit}"))
                .spawn(move || isp_unit_loop(&shared, &tx, &failover_tx))
                .expect("spawn isp worker");
            handles.push(handle);
        }
        {
            let shared = Arc::clone(&shared);
            let tx = tx.clone();
            let handle = std::thread::Builder::new()
                .name("presto-isp-failover".into())
                .spawn(move || host_failover_loop(&shared, &tx, &failover_rx))
                .expect("spawn isp failover worker");
            handles.push(handle);
        }
        drop(tx);
        drop(failover_tx); // unit clones are now the only failover senders
        IspBatchStream { rx: Some(rx), handles, shared, workers, capacity }
    }

    /// Consolidated counters ([`StreamStats`]); this fleet reports P2P link
    /// traffic but no boundary hand-offs.
    #[must_use]
    pub fn stats(&self) -> StreamStats {
        StreamStats {
            workers: self.workers,
            capacity: self.capacity,
            queued: self.rx.as_ref().map_or(0, Receiver::len),
            completed: self.completed(),
            p2p_bytes: self.p2p_bytes(),
            boundary_bytes: 0,
            recovery: Some(self.run_report()),
        }
    }

    /// Effective ISP-unit count (after clamping).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Effective channel capacity (after clamping).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Partitions fully preprocessed so far (producer-side counter).
    #[must_use]
    pub fn completed(&self) -> usize {
        self.shared.completed.load(Ordering::Relaxed)
    }

    /// Bytes moved over the emulated P2P links so far, summed across units.
    /// Failed-over partitions contribute nothing: their bytes moved over
    /// the host's block-I/O path, not a P2P link.
    #[must_use]
    pub fn p2p_bytes(&self) -> u64 {
        self.shared.p2p_bytes.load(Ordering::Relaxed)
    }

    /// Recovery-activity snapshot ([`RunReport`]: retries, failovers,
    /// quarantines, per-device fault counts, delivery timeline). Final
    /// once the stream is drained; callable mid-stream for live
    /// monitoring.
    #[must_use]
    pub fn run_report(&self) -> RunReport {
        self.shared.tracker.report()
    }

    fn join_workers(&mut self) {
        for handle in self.handles.drain(..) {
            if let Err(panic) = handle.join() {
                if !std::thread::panicking() {
                    std::panic::resume_unwind(panic);
                }
            }
        }
    }
}

impl Iterator for IspBatchStream {
    type Item = IspItem;

    fn next(&mut self) -> Option<IspItem> {
        let item = self.rx.as_ref().and_then(|rx| rx.recv().ok());
        match item {
            Some(item) => Some(item),
            None => {
                self.join_workers();
                None
            }
        }
    }
}

impl Drop for IspBatchStream {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        self.rx = None;
        self.join_workers();
    }
}

impl BatchSource for IspBatchStream {
    fn next_batch(&mut self) -> Option<Result<StreamedBatch, PreprocessError>> {
        self.next()
    }

    fn capacity(&self) -> usize {
        IspBatchStream::capacity(self)
    }

    fn queued(&self) -> usize {
        self.rx.as_ref().map_or(0, Receiver::len)
    }

    fn stats(&self) -> StreamStats {
        IspBatchStream::stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_datagen::{generate_batch, write_partition, RmConfig};
    use presto_ops::preprocess_partition;

    fn setup(rows: usize) -> (RmConfig, PreprocessPlan, presto_columnar::MemBlob) {
        let mut c = RmConfig::rm1();
        c.batch_size = rows;
        let plan = PreprocessPlan::from_config(&c, 11).expect("plan");
        let batch = generate_batch(&c, rows, 5);
        let blob = write_partition(&batch).expect("serializes");
        (c, plan, blob)
    }

    #[test]
    fn isp_output_is_bit_identical_to_cpu_path() {
        let (_, plan, blob) = setup(256);
        let worker = IspWorker::new(plan.clone());
        let (isp_out, stats) = worker.preprocess(blob.clone()).expect("isp path");
        let (cpu_out, _) = preprocess_partition(&plan, blob).expect("cpu path");
        assert_eq!(isp_out, cpu_out);
        assert!(stats.elements > 0);
        assert!(stats.p2p_bytes > 0);
    }

    #[test]
    fn chunk_size_does_not_change_results() {
        let (_, plan, blob) = setup(200);
        let a = IspWorker::new(plan.clone())
            .with_buffer_elems(7)
            .preprocess(blob.clone())
            .expect("tiny chunks")
            .0;
        let b = IspWorker::new(plan.clone())
            .with_buffer_elems(4096)
            .preprocess(blob.clone())
            .expect("one chunk")
            .0;
        let c = IspWorker::new(plan).preprocess(blob).expect("default").0;
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn chunk_counts_follow_buffer_size() {
        let (_, plan, blob) = setup(256);
        let small = IspWorker::new(plan.clone())
            .with_buffer_elems(32)
            .preprocess(blob.clone())
            .expect("runs")
            .1;
        let large = IspWorker::new(plan).with_buffer_elems(512).preprocess(blob).expect("runs").1;
        assert!(small.bucketize_chunks > large.bucketize_chunks);
        assert_eq!(small.elements, large.elements);
    }

    #[test]
    fn p2p_bytes_match_projected_chunks() {
        let (_, plan, blob) = setup(128);
        let file_len = blob.as_bytes().len() as u64;
        let (_, stats) = IspWorker::new(plan).preprocess(blob).expect("runs");
        // Projection covers all feature columns here, so P2P bytes are most
        // of the file but strictly less (footer + magic excluded).
        assert!(stats.p2p_bytes < file_len);
        assert!(stats.p2p_bytes > file_len / 2);
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn zero_buffer_rejected() {
        let (_, plan, _) = setup(8);
        let _ = IspWorker::new(plan).with_buffer_elems(0);
    }

    #[test]
    fn scratch_reuse_across_partitions_matches_fresh_runs() {
        let mut c = RmConfig::rm1();
        c.batch_size = 96;
        let plan = PreprocessPlan::from_config(&c, 11).expect("plan");
        let worker = IspWorker::new(plan.clone());
        let mut scratch = ScratchSpace::new();
        for seed in 0..3 {
            let batch = generate_batch(&c, 96, 40 + seed);
            let blob = write_partition(&batch).expect("serializes");
            let (fresh, fresh_stats) = worker.preprocess(blob.clone()).expect("fresh");
            let (reused, reused_stats) =
                worker.preprocess_with(blob, &mut scratch).expect("reused");
            assert_eq!(fresh, reused, "seed {seed}");
            assert_eq!(fresh_stats, reused_stats, "seed {seed}");
        }
    }

    #[test]
    fn opaque_backend_matches_shared_backend() {
        // CountingBlob defeats the lazy-decode path, forcing the staged
        // fallback in every unit; outputs and stats must not change.
        let (_, plan, blob) = setup(160);
        let worker = IspWorker::new(plan);
        let (shared_out, shared_stats) = worker.preprocess(blob.clone()).expect("shared");
        let counting = presto_columnar::CountingBlob::new(blob);
        let (opaque_out, opaque_stats) = worker.preprocess(&counting).expect("opaque");
        assert_eq!(shared_out, opaque_out);
        assert_eq!(shared_stats, opaque_stats);
        assert!(counting.bytes_read() > 0);
    }

    #[test]
    fn isp_stream_matches_serial_isp_and_cpu_paths() {
        let mut c = RmConfig::rm1();
        c.batch_size = 48;
        let plan = PreprocessPlan::from_config(&c, 11).expect("plan");
        let ds = presto_datagen::Dataset::generate(&c, 6, 48, 2, 21).expect("dataset");
        let serial: Vec<MiniBatch> = ds
            .partitions()
            .iter()
            .map(|p| preprocess_partition(&plan, p.blob.clone()).unwrap().0)
            .collect();
        let mut stream = IspBatchStream::spawn(&plan, ds.partitions(), &FleetConfig::new(2, 2));
        let mut got: Vec<(usize, MiniBatch)> = Vec::new();
        for item in stream.by_ref() {
            let b = item.expect("preprocesses");
            got.push((b.partition, b.batch));
        }
        assert!(stream.p2p_bytes() > 0);
        assert_eq!(stream.completed(), 6);
        got.sort_by_key(|(p, _)| *p);
        assert_eq!(got.len(), 6);
        for (pos, batch) in got {
            assert_eq!(batch, serial[pos], "partition {pos}");
        }
    }

    #[test]
    fn isp_stream_surfaces_errors_and_stops() {
        let mut c = RmConfig::rm1();
        c.batch_size = 32;
        let plan = PreprocessPlan::from_config(&c, 11).expect("plan");
        let ds = presto_datagen::Dataset::generate(&c, 5, 32, 1, 3).expect("dataset");
        let mut partitions = ds.partitions().to_vec();
        let bytes = partitions[1].blob.as_bytes().to_vec();
        partitions[1].blob = presto_columnar::MemBlob::new(bytes[..bytes.len() / 4].to_vec());
        // One worker claims partitions in order: 0 ok, 1 errors, then stop.
        let mut stream = IspBatchStream::spawn(&plan, &partitions, &FleetConfig::new(1, 1));
        let mut ok = 0usize;
        let mut errors = 0usize;
        for item in stream.by_ref() {
            match item {
                Ok(_) => ok += 1,
                Err(_) => errors += 1,
            }
        }
        assert_eq!((ok, errors), (1, 1));
        assert_eq!(stream.completed(), 1, "fleet halts within one partition");
    }

    #[test]
    fn dead_isp_device_fails_over_to_host_with_identical_output() {
        let mut c = RmConfig::rm1();
        c.batch_size = 32;
        let plan = PreprocessPlan::from_config(&c, 11).expect("plan");
        let ds = presto_datagen::Dataset::generate(&c, 8, 32, 2, 9).expect("dataset");
        let serial: Vec<MiniBatch> = ds
            .partitions()
            .iter()
            .map(|p| preprocess_partition(&plan, p.blob.clone()).unwrap().0)
            .collect();
        // ISP device 1 is dead on arrival; device 0 stays healthy.
        let injector = presto_columnar::FaultPlan::new(3).with_device_death(1, 0).arm();
        let partitions: Vec<Partition> = ds
            .partitions()
            .iter()
            .map(|p| Partition {
                index: p.index,
                device: p.device,
                rows: p.rows,
                blob: p.blob.clone().with_faults(&injector, p.device, p.index),
            })
            .collect();
        let recovery = presto_ops::RetryPolicy::recover()
            .with_max_attempts(2)
            .with_backoff(std::time::Duration::ZERO, std::time::Duration::ZERO)
            .with_quarantine_after(2);
        let mut stream = IspBatchStream::spawn(
            &plan,
            &partitions,
            &FleetConfig::new(2, 4).with_recovery(recovery),
        );
        let mut got: Vec<(usize, MiniBatch, bool)> = Vec::new();
        for item in stream.by_ref() {
            let b = item.expect("every partition must deliver (failover covers device 1)");
            got.push((b.partition, b.batch, b.via_failover));
        }
        let report = stream.run_report();
        got.sort_by_key(|(p, _, _)| *p);
        assert_eq!(got.len(), 8, "no partition lost");
        for (pos, batch, _) in &got {
            assert_eq!(batch, &serial[*pos], "partition {pos} must be bit-identical");
        }
        assert!(
            got.iter().any(|(_, _, via)| *via),
            "dead-device partitions must arrive via failover"
        );
        assert!(report.failovers > 0, "report must record the failovers");
        assert!(report.quarantined.contains(&1), "device 1 must be quarantined");
        assert!(report.failed_partitions.is_empty());
        assert_eq!(report.delivered, 8);
        // Failover batches moved no P2P bytes; healthy ones did.
        assert!(stream.p2p_bytes() > 0);
    }

    #[test]
    fn quarantine_without_failover_surfaces_tagged_errors_not_silence() {
        let mut c = RmConfig::rm1();
        c.batch_size = 24;
        let plan = PreprocessPlan::from_config(&c, 11).expect("plan");
        let ds = presto_datagen::Dataset::generate(&c, 6, 24, 2, 13).expect("dataset");
        let injector = presto_columnar::FaultPlan::new(4).with_device_death(0, 0).arm();
        let partitions: Vec<Partition> = ds
            .partitions()
            .iter()
            .map(|p| Partition {
                index: p.index,
                device: p.device,
                rows: p.rows,
                blob: p.blob.clone().with_faults(&injector, p.device, p.index),
            })
            .collect();
        let recovery = presto_ops::RetryPolicy::recover()
            .with_max_attempts(2)
            .with_backoff(std::time::Duration::ZERO, std::time::Duration::ZERO)
            .with_quarantine_after(2)
            .with_failover(false);
        let mut stream = IspBatchStream::spawn(
            &plan,
            &partitions,
            &FleetConfig::new(2, 4).with_recovery(recovery),
        );
        let mut ok = 0usize;
        let mut failed: Vec<usize> = Vec::new();
        for item in stream.by_ref() {
            match item {
                Ok(b) => {
                    assert_ne!(b.device, 0, "dead device cannot deliver");
                    ok += 1;
                }
                Err(e) => {
                    assert_eq!(e.device(), Some(0), "error names the dead device");
                    failed.push(e.partition().expect("provenance"));
                }
            }
        }
        let report = stream.run_report();
        let on_dead = partitions.iter().filter(|p| p.device == 0).count();
        assert_eq!(ok, 6 - on_dead);
        assert_eq!(failed.len(), on_dead, "every dead partition fails loudly");
        assert_eq!(
            report.delivered as usize + report.failed_partitions.len(),
            report.partitions,
            "quarantine never drops a partition silently"
        );
    }

    #[test]
    fn dropping_an_isp_stream_joins_without_deadlock() {
        let mut c = RmConfig::rm1();
        c.batch_size = 32;
        let plan = PreprocessPlan::from_config(&c, 11).expect("plan");
        let ds = presto_datagen::Dataset::generate(&c, 8, 32, 2, 5).expect("dataset");
        let mut stream = IspBatchStream::spawn(&plan, ds.partitions(), &FleetConfig::new(2, 1));
        let _ = stream.next().unwrap().unwrap();
        drop(stream); // full channel + live producers must not wedge
    }

    #[test]
    fn production_shape_also_matches() {
        let mut c = RmConfig::rm3();
        c.batch_size = 64;
        let plan = PreprocessPlan::from_config(&c, 3).expect("plan");
        let batch = generate_batch(&c, 64, 9);
        let blob = write_partition(&batch).expect("serializes");
        let (isp_out, _) = IspWorker::new(plan.clone()).preprocess(blob.clone()).expect("isp");
        let (cpu_out, _) = preprocess_partition(&plan, blob).expect("cpu");
        assert_eq!(isp_out, cpu_out);
        assert_eq!(isp_out.sparse().len(), 42 + 42);
    }
}
