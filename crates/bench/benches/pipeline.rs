//! Criterion benches of the end-to-end functional pipeline and of the
//! evaluation harness itself (simulation cost per figure).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use presto_core::experiments;
use presto_datagen::{generate_batch, write_partition, RmConfig};
use presto_ops::{preprocess_batch, preprocess_partition, PlanGraph, PreprocessPlan};
use std::hint::black_box;

fn bench_preprocess_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("preprocess_batch");
    for (name, mut config) in [("rm1", RmConfig::rm1()), ("rm2", RmConfig::rm2())] {
        config.batch_size = 1024;
        let plan = PreprocessPlan::from_config(&config, 1).expect("plan");
        let batch = generate_batch(&config, 1024, 5);
        group.throughput(Throughput::Elements(1024));
        group.bench_with_input(
            BenchmarkId::new("model", name),
            &(plan, batch),
            |bench, (plan, batch)| {
                bench.iter(|| black_box(preprocess_batch(plan, batch).expect("preprocesses")));
            },
        );
    }
    group.finish();
}

fn bench_preprocess_partition(c: &mut Criterion) {
    // Full Extract -> Transform -> Load path over the columnar format.
    let mut config = RmConfig::rm1();
    config.batch_size = 1024;
    let plan = PreprocessPlan::from_config(&config, 1).expect("plan");
    let batch = generate_batch(&config, 1024, 5);
    let blob = write_partition(&batch).expect("encodes");
    let mut group = c.benchmark_group("preprocess_partition");
    group.throughput(Throughput::Elements(1024));
    group.bench_function("rm1", |bench| {
        bench.iter(|| {
            black_box(preprocess_partition(&plan, black_box(blob.clone())).expect("pipeline"))
        });
    });
    group.finish();
}

fn bench_scenario_graphs(c: &mut Criterion) {
    // Non-canonical operator graphs through the full partition path: the
    // cost of the richer vocabulary (FirstX + NGram crosses, MapId
    // remaps) relative to the canonical pipeline on the same data.
    let mut config = RmConfig::rm1_lists();
    config.batch_size = 1024;
    let batch = generate_batch(&config, 1024, 5);
    let blob = write_partition(&batch).expect("encodes");
    let scenarios = [
        ("canonical", PlanGraph::canonical(&config, 1).expect("graph")),
        ("truncated_cross", PlanGraph::truncated_cross(&config, 1, 4, 2).expect("graph")),
        ("remapped", PlanGraph::remapped(&config, 1, 4096).expect("graph")),
    ];
    let mut group = c.benchmark_group("preprocess_scenario");
    group.throughput(Throughput::Elements(1024));
    for (name, graph) in scenarios {
        let plan = PreprocessPlan::compile(graph, &config).expect("compiles");
        group.bench_with_input(BenchmarkId::new("rm1_lists", name), &plan, |bench, plan| {
            bench.iter(|| {
                black_box(preprocess_partition(plan, black_box(blob.clone())).expect("pipeline"))
            });
        });
    }
    group.finish();
}

fn bench_experiment_harness(c: &mut Criterion) {
    // Cost of regenerating each modeled figure (all should be trivially
    // cheap except fig6, which runs the trace-driven cache simulation).
    let mut group = c.benchmark_group("figure_harness");
    group.bench_function("fig11", |bench| bench.iter(|| black_box(experiments::fig11())));
    group.bench_function("fig12", |bench| bench.iter(|| black_box(experiments::fig12())));
    group.bench_function("fig17", |bench| bench.iter(|| black_box(experiments::fig17())));
    group.sample_size(10);
    group.bench_function("fig6_rows512", |bench| bench.iter(|| black_box(experiments::fig6(512))));
    group.finish();
}

/// Short measurement windows keep `cargo bench --workspace` to a few
/// minutes while staying statistically useful.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_preprocess_batch, bench_preprocess_partition, bench_scenario_graphs,
        bench_experiment_harness
}
criterion_main!(benches);
