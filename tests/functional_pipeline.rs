//! Cross-crate functional tests: real data through the real pipeline,
//! checked against the analytic workload profiles the simulator prices.

use presto::columnar::{CountingBlob, FileReader};
use presto::datagen::{generate_batch, write_partition, Dataset, RmConfig, WorkloadProfile};
use presto::ops::{preprocess_partition, run_workers, PreprocessPlan};

fn small(config: &mut RmConfig, batch: usize) -> RmConfig {
    config.batch_size = batch;
    config.clone()
}

#[test]
fn every_model_shape_preprocesses_cleanly() {
    for mut config in RmConfig::all() {
        let config = small(&mut config, 64);
        let plan = PreprocessPlan::from_config(&config, 11).expect("plan builds");
        let batch = generate_batch(&config, 64, 5);
        let blob = write_partition(&batch).expect("serializes");
        let (mb, _) = preprocess_partition(&plan, blob).expect("preprocesses");
        assert_eq!(mb.rows(), 64, "{}", config.name);
        assert_eq!(mb.dense().cols(), config.num_dense, "{}", config.name);
        assert_eq!(mb.sparse().len(), config.num_sparse + config.num_generated, "{}", config.name);
    }
}

#[test]
fn measured_bytes_track_analytic_profile() {
    // The simulator prices Extract from WorkloadProfile::raw_bytes; the
    // real columnar encoding must stay within 2x of that estimate, or the
    // hwsim layer is modeling a different format than we actually built.
    for mut config in RmConfig::all() {
        let name = config.name.clone();
        let config = small(&mut config, 512);
        let analytic = WorkloadProfile::from_config(&config);
        let measured = WorkloadProfile::measured(&config, 512, 3);
        let ratio = measured.raw_bytes as f64 / analytic.raw_bytes as f64;
        assert!((0.5..=2.0).contains(&ratio), "{name}: measured/analytic raw bytes {ratio:.2}");
    }
}

#[test]
fn minibatch_size_tracks_tensor_bytes_estimate() {
    let mut config = RmConfig::rm1();
    let config = small(&mut config, 1024);
    let plan = PreprocessPlan::from_config(&config, 1).expect("plan");
    let batch = generate_batch(&config, 1024, 9);
    let (mb, _) = presto::ops::preprocess_batch(&plan, &batch).expect("preprocesses");
    let profile = WorkloadProfile::of_batch(&config, &batch, 0);
    // Host mini-batch stores i64 ids (vs int32 on the wire): allow 2.2x.
    let ratio = mb.byte_size() as f64 / profile.tensor_bytes as f64;
    assert!((0.8..=2.2).contains(&ratio), "minibatch/tensor_bytes {ratio:.2}");
}

#[test]
fn dataset_round_robin_feeds_parallel_workers() {
    let mut config = RmConfig::rm1();
    let config = small(&mut config, 48);
    let ds = Dataset::generate(&config, 8, 48, 4, 77).expect("dataset");
    let plan = PreprocessPlan::from_config(&config, 1).expect("plan");
    let report = run_workers(&plan, ds.partitions(), 4).expect("workers run");
    assert_eq!(report.batches.len(), 8);
    // Every partition produced a distinct mini-batch (different data).
    for window in report.batches.windows(2) {
        assert_ne!(window[0], window[1]);
    }
}

#[test]
fn extract_reads_only_plan_columns() {
    // The plan needs label + dense + sparse (all columns here), so add an
    // unused extra column scenario by projecting a subset manually.
    let mut config = RmConfig::rm1();
    let config = small(&mut config, 256);
    let batch = generate_batch(&config, 256, 13);
    let blob = write_partition(&batch).expect("serializes");
    let file_len = blob.as_bytes().len() as u64;

    let counting = CountingBlob::new(blob);
    let reader = FileReader::open(counting).expect("opens");
    let metadata = reader.into_inner();
    let meta_bytes = metadata.bytes_read();
    metadata.reset();
    let reader = FileReader::open(metadata).expect("reopens");
    reader.read_projected(0, &["label", "dense_0"]).expect("projects");
    let blob = reader.into_inner();
    let data_bytes = blob.bytes_read() - meta_bytes;
    assert!(data_bytes < file_len / 5, "projected read touched {data_bytes} of {file_len} bytes");
}

#[test]
fn hashed_ids_fit_paper_embedding_tables() {
    // Every normalized id must index an embedding table of the configured
    // size — the exact contract SigridHash exists to enforce (Sec. II-C).
    let mut config = RmConfig::rm2();
    let config = small(&mut config, 128);
    let plan = PreprocessPlan::from_config(&config, 3).expect("plan");
    let batch = generate_batch(&config, 128, 21);
    let (mb, _) = presto::ops::preprocess_batch(&plan, &batch).expect("preprocesses");
    for feat in mb.sparse() {
        let bound = if feat.name.starts_with("gen_") {
            config.bucket_size as i64 + 1
        } else {
            config.avg_embeddings as i64
        };
        assert!(feat.values.iter().all(|v| (0..bound).contains(v)), "{}", feat.name);
    }
}
