//! The paper-shape contract: every headline claim of the PreSto paper,
//! asserted as a band over the full model stack. If calibration drifts,
//! these tests fail before EXPERIMENTS.md can go stale.
//!
//! Bands are intentionally loose enough to tolerate constant tweaks but
//! tight enough that "who wins, by roughly what factor, where the
//! crossovers fall" cannot silently invert.

use presto::core::experiments;
use presto::core::provision::Provisioner;
use presto::core::systems::System;
use presto::datagen::{RmConfig, WorkloadProfile};
use presto::hwsim::net::NetworkModel;
use presto::metrics::efficiency::{fig15, mean};

fn profiles() -> Vec<(RmConfig, WorkloadProfile)> {
    RmConfig::all().into_iter().map(|c| (c.clone(), WorkloadProfile::from_config(&c))).collect()
}

#[test]
fn headline_speedup_9_6x_average_11_6x_max() {
    let groups = experiments::fig12();
    let speedups: Vec<f64> = groups.iter().map(|g| g.speedup).collect();
    let avg = mean(&speedups);
    let max = speedups.iter().fold(0.0f64, |a, &b| a.max(b));
    assert!((8.0..=12.5).contains(&avg), "avg speedup {avg:.2} (paper 9.6)");
    assert!((10.0..=13.5).contains(&max), "max speedup {max:.2} (paper 11.6)");
}

#[test]
fn transform_ops_dominate_cpu_preprocessing() {
    // Sec. III-B: Bucketize + SigridHash + Log = 79% of time on average.
    let shares: Vec<f64> =
        experiments::fig5().iter().map(|(_, b)| b.transform_fraction()).collect();
    let avg = mean(&shares);
    assert!((0.69..=0.89).contains(&avg), "avg transform share {avg:.3} (paper 0.79)");
}

#[test]
fn production_models_are_an_order_of_magnitude_heavier() {
    // Fig. 5: RM5 ≈ 14× RM1 end-to-end preprocessing latency.
    let rows = experiments::fig5();
    let ratio = rows[4].1.total().seconds() / rows[0].1.total().seconds();
    assert!((10.0..=18.0).contains(&ratio), "RM5/RM1 {ratio:.1} (paper 14)");
}

#[test]
fn presto_extract_share_near_40_percent() {
    // Sec. VI-A: Extract ≈ 40.8% of PreSto's preprocessing time on average.
    let shares: Vec<f64> =
        experiments::fig12().iter().map(|g| g.presto.extract_fraction()).collect();
    let avg = mean(&shares);
    assert!((0.30..=0.52).contains(&avg), "avg PreSto extract share {avg:.3} (paper 0.408)");
}

#[test]
fn one_smartssd_sits_between_32_and_64_cores() {
    // Fig. 11: PreSto > Disagg(32); Disagg(64) wins back by ~27%.
    for (config, profile) in profiles() {
        let presto = System::presto_smartssd(1).throughput(&profile);
        let d32 = System::disagg(32).throughput(&profile);
        let d64 = System::disagg(64).throughput(&profile);
        assert!(presto > d32, "{}: crossover below 32 cores", config.name);
        let ratio = d64 / presto;
        assert!(
            (1.05..=1.9).contains(&ratio),
            "{}: Disagg(64)/PreSto {ratio:.2} (paper 1.27)",
            config.name
        );
    }
}

#[test]
fn rpc_reduction_near_2_9x() {
    let net = NetworkModel::poc();
    let mut ratios = Vec::new();
    for (_, profile) in profiles() {
        let disagg = System::disagg(1).rpc_account(&profile).time_on(&net);
        let presto = System::presto_smartssd(1).rpc_account(&profile).time_on(&net);
        ratios.push(disagg / presto);
    }
    let avg = mean(&ratios);
    assert!((1.8..=4.5).contains(&avg), "avg RPC reduction {avg:.2} (paper 2.9)");
}

#[test]
fn provisioning_scale_matches_figs_4_and_14() {
    let p = Provisioner::poc();
    let rm5_cores = p.cpu_cores_required(&RmConfig::rm5(), 8);
    assert!((280..=420).contains(&rm5_cores), "RM5 cores {rm5_cores} (paper 367)");
    for c in RmConfig::all() {
        let units = p.isp_units_required(&c, 8);
        assert!(units <= 12, "{}: {units} ISP units (paper max 9)", c.name);
        assert!(units >= 1);
    }
}

#[test]
fn energy_efficiency_near_11x_cost_efficiency_near_4x() {
    let rows = fig15();
    let energy: Vec<f64> = rows.iter().map(|r| r.energy_efficiency_gain).collect();
    let cost: Vec<f64> = rows.iter().map(|r| r.cost_efficiency_gain).collect();
    let e_avg = mean(&energy);
    let c_avg = mean(&cost);
    assert!((7.0..=14.0).contains(&e_avg), "avg energy gain {e_avg:.1} (paper 11.3)");
    assert!((3.0..=6.5).contains(&c_avg), "avg cost gain {c_avg:.1} (paper 4.3)");
}

#[test]
fn colocated_gpu_starves_below_25_percent() {
    // Fig. 3: 16 co-located workers leave the A100 under ~20% utilized.
    let (points, _) = experiments::fig3(&RmConfig::rm5());
    let at16 = points.iter().find(|p| p.cores == 16).expect("16-core point");
    assert!(at16.gpu_utilization < 0.25, "utilization {:.2}", at16.gpu_utilization);
    // Near-linear worker scaling (paper: 15× from 1 to 16 workers).
    let scale = at16.preprocess_throughput / points[0].preprocess_throughput;
    assert!((14.0..=16.0).contains(&scale), "scaling {scale:.1}");
}

#[test]
fn gpu_preprocessing_loses_to_presto_by_2_5x() {
    // Fig. 16: PreSto (SmartSSD) ≈ 2.5× the A100's NVTabular throughput.
    let mut ratios = Vec::new();
    for group in experiments::fig16() {
        let get = |name: &str| {
            group.entries.iter().find(|(n, _, _)| n == name).map(|(_, t, _)| *t).unwrap()
        };
        ratios.push(get("PreSto (SmartSSD)") / get("A100"));
    }
    let avg = mean(&ratios);
    assert!((1.8..=3.6).contains(&avg), "avg PreSto/A100 {avg:.2} (paper 2.5)");
}

#[test]
fn smartssd_wins_perf_per_watt_everywhere() {
    // Fig. 16 right axis: the 25 W SmartSSD dominates performance/Watt.
    for group in experiments::fig16() {
        let best = group
            .entries
            .iter()
            .max_by(|a, b| a.2.partial_cmp(&b.2).expect("finite perf/W"))
            .expect("entries");
        assert_eq!(best.0, "PreSto (SmartSSD)", "{}: best perf/W is {}", group.model, best.0);
    }
}

#[test]
fn disagg_op_latency_scales_with_features_presto_keeps_speedup() {
    // Fig. 17: 1x/2x/4x feature sweep.
    let points = experiments::fig17();
    for op in presto::hwsim::trace::OpKind::ALL {
        let series: Vec<_> = points.iter().filter(|p| p.op == op).collect();
        let growth = series[2].disagg / series[0].disagg;
        assert!((3.0..=5.0).contains(&growth), "{op}: Disagg growth {growth:.2}");
        for p in &series {
            assert!(p.speedup > 5.0, "{op} x{}: speedup {:.1}", p.factor, p.speedup);
        }
    }
}
