//! Additional TorchArrow list/dense operations used in production RecSys
//! preprocessing pipelines beyond the paper's three core ops.
//!
//! * [`firstx`] — truncate each sparse list to its first `x` ids
//!   (TorchArrow `firstx`), bounding per-row work and embedding pooling.
//! * [`prune_empty`] — drop rows whose list is empty, returning the kept
//!   row indices (used when a feature is mandatory).
//! * [`clamp_dense`] — clamp dense features into a range before
//!   normalization (TorchArrow `clamp`).
//! * [`fill_missing`] — replace NaN dense values with a default.

/// Truncates each list to its first `x` elements.
///
/// Returns the new `(offsets, values)`; rows shorter than `x` are kept
/// whole. `x == 0` empties every list.
#[must_use]
pub fn firstx(offsets: &[u32], values: &[i64], x: usize) -> (Vec<u32>, Vec<i64>) {
    let rows = offsets.len().saturating_sub(1);
    let mut out_offsets = Vec::with_capacity(rows + 1);
    out_offsets.push(0u32);
    let mut out_values = Vec::new();
    for row in 0..rows {
        let start = offsets[row] as usize;
        let end = offsets[row + 1] as usize;
        let take = (end - start).min(x);
        out_values.extend_from_slice(&values[start..start + take]);
        out_offsets.push(out_values.len() as u32);
    }
    (out_offsets, out_values)
}

/// Drops rows with empty lists; returns `(offsets, values, kept_rows)`.
#[must_use]
pub fn prune_empty(offsets: &[u32], values: &[i64]) -> (Vec<u32>, Vec<i64>, Vec<u32>) {
    let rows = offsets.len().saturating_sub(1);
    let mut out_offsets = vec![0u32];
    let mut out_values = Vec::new();
    let mut kept = Vec::new();
    for row in 0..rows {
        let start = offsets[row] as usize;
        let end = offsets[row + 1] as usize;
        if start == end {
            continue;
        }
        out_values.extend_from_slice(&values[start..end]);
        out_offsets.push(out_values.len() as u32);
        kept.push(row as u32);
    }
    (out_offsets, out_values, kept)
}

/// Clamps each dense value into `[lo, hi]`.
///
/// # Panics
///
/// Panics when `lo > hi` or either bound is NaN.
#[must_use]
pub fn clamp_dense(values: &[f32], lo: f32, hi: f32) -> Vec<f32> {
    assert!(lo <= hi, "clamp bounds inverted: {lo} > {hi}");
    values.iter().map(|&v| v.clamp(lo, hi)).collect()
}

/// Replaces NaN entries with `default`.
#[must_use]
pub fn fill_missing(values: &[f32], default: f32) -> Vec<f32> {
    values.iter().map(|&v| if v.is_nan() { default } else { v }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jagged(lists: &[&[i64]]) -> (Vec<u32>, Vec<i64>) {
        let mut offsets = vec![0u32];
        let mut values = Vec::new();
        for l in lists {
            values.extend_from_slice(l);
            offsets.push(values.len() as u32);
        }
        (offsets, values)
    }

    #[test]
    fn firstx_truncates_long_lists_only() {
        let (o, v) = jagged(&[&[1, 2, 3, 4], &[5], &[], &[6, 7]]);
        let (oo, ov) = firstx(&o, &v, 2);
        assert_eq!(oo, vec![0, 2, 3, 3, 5]);
        assert_eq!(ov, vec![1, 2, 5, 6, 7]);
    }

    #[test]
    fn firstx_zero_empties_everything() {
        let (o, v) = jagged(&[&[1], &[2, 3]]);
        let (oo, ov) = firstx(&o, &v, 0);
        assert_eq!(oo, vec![0, 0, 0]);
        assert!(ov.is_empty());
    }

    #[test]
    fn firstx_is_idempotent_at_or_above_max_len() {
        let (o, v) = jagged(&[&[1, 2], &[3]]);
        let (oo, ov) = firstx(&o, &v, 10);
        assert_eq!((oo, ov), (o, v));
    }

    #[test]
    fn prune_empty_keeps_row_mapping() {
        let (o, v) = jagged(&[&[], &[1], &[], &[2, 3]]);
        let (oo, ov, kept) = prune_empty(&o, &v);
        assert_eq!(kept, vec![1, 3]);
        assert_eq!(oo, vec![0, 1, 3]);
        assert_eq!(ov, vec![1, 2, 3]);
    }

    #[test]
    fn prune_of_all_empty_gives_empty() {
        let (o, v) = jagged(&[&[], &[]]);
        let (oo, ov, kept) = prune_empty(&o, &v);
        assert_eq!(oo, vec![0]);
        assert!(ov.is_empty());
        assert!(kept.is_empty());
    }

    #[test]
    fn clamp_bounds_values() {
        assert_eq!(clamp_dense(&[-5.0, 0.5, 99.0], 0.0, 1.0), vec![0.0, 0.5, 1.0]);
    }

    #[test]
    #[should_panic(expected = "clamp bounds inverted")]
    fn clamp_rejects_inverted_bounds() {
        let _ = clamp_dense(&[1.0], 2.0, 1.0);
    }

    #[test]
    fn fill_missing_replaces_only_nan() {
        let out = fill_missing(&[1.0, f32::NAN, -2.0], 0.0);
        assert_eq!(out, vec![1.0, 0.0, -2.0]);
    }
}
