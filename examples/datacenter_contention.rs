//! Fleet-scale network contention: how many concurrent training jobs can
//! a shared storage fabric feed before GPU utilization collapses?
//!
//! The paper's Fig. 13 argues PreSto relieves pressure on the time-shared
//! datacenter network; this example plays the argument out at fleet scale
//! using the contention model in `presto_core::datacenter`, then
//! cross-checks the *analytic* throttle curve against a *measured* one:
//! [`measure_throttle`] actually runs N identical tenants through the
//! multi-tenant [`PreprocessService`](presto::core::PreprocessService) on
//! a shared pool and reports how far per-job goodput falls below solo.
//!
//! Run with: `cargo run --example datacenter_contention`
//! `PRESTO_CONTENTION_ROWS` / `PRESTO_CONTENTION_PARTITIONS` shrink the
//! measured leg (CI uses tiny values).

use presto::core::datacenter::{sweep, Fabric};
use presto::core::measure_throttle;
use presto::datagen::{Dataset, RmConfig};
use presto::metrics::{percent, TextTable};
use presto::ops::PreprocessPlan;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    let config = RmConfig::rm5();
    let fabric = Fabric::poc_cluster();
    println!(
        "fleet study: identical {} jobs (8x A100 each) sharing a {} storage fabric\n",
        config.name, fabric.bisection
    );

    let job_counts = [1usize, 2, 3, 4, 6, 8, 12, 16, 24, 32];
    let rows = sweep(&config, &job_counts, 8, fabric);

    let mut table = TextTable::new(vec![
        "concurrent jobs",
        "Disagg fabric load",
        "Disagg GPU util",
        "PreSto fabric load",
        "PreSto GPU util",
    ]);
    for (jobs, disagg, presto) in &rows {
        table.row(vec![
            jobs.to_string(),
            format!("{:.2}", disagg.fabric_load),
            percent(disagg.gpu_utilization),
            format!("{:.2}", presto.fabric_load),
            percent(presto.gpu_utilization),
        ]);
    }
    print!("{}", table.render());

    let first_bad = |pick: fn(&(usize, _, _)) -> f64| {
        rows.iter()
            .find(|r| pick(r) < 0.9)
            .map_or("beyond sweep".to_owned(), |r| format!("{} jobs", r.0))
    };
    println!();
    println!(
        "fleet saturates (<90% GPU util): Disagg at {}, PreSto at {}",
        first_bad(|r| r.1.gpu_utilization),
        first_bad(|r| r.2.gpu_utilization),
    );
    println!();
    println!("Disagg ships raw features AND train-ready tensors across the");
    println!("fabric; PreSto ships tensors only, so the same fabric feeds");
    println!("roughly 2x the concurrent jobs before preprocessing throttles.");
    println!();

    // Measured cross-check: run real tenants through the multi-tenant
    // service on a shared pool and compare the observed goodput throttle
    // with the analytic fabric model above.
    let rows_per_part = env_usize("PRESTO_CONTENTION_ROWS", 512);
    let partitions = env_usize("PRESTO_CONTENTION_PARTITIONS", 6);
    let mut small = RmConfig::rm1();
    small.batch_size = rows_per_part;
    let plan = PreprocessPlan::from_config(&small, 7).expect("RM1 plan compiles");
    let ds = Dataset::generate(&small, partitions, rows_per_part, 2, 7).expect("dataset");
    let pool_workers = 2;
    let measured = measure_throttle(&plan, ds.partitions(), &[1, 2, 4], pool_workers);

    println!(
        "-- measured throttle: N identical {} tenants on one {pool_workers}-worker pool --",
        small.name
    );
    let mut table =
        TextTable::new(vec!["tenants", "per-job goodput", "vs solo", "fairness (Jain)"]);
    for m in &measured {
        table.row(vec![
            m.jobs.to_string(),
            format!("{:.0} rows/s", m.mean_rows_per_sec),
            percent(m.throttle()),
            format!("{:.3}", m.fairness),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!("The analytic rows model fabric contention; the measured rows show the");
    println!("service's weighted-fair scheduler dividing one real pool: per-job");
    println!("goodput falls roughly as 1/N while Jain fairness stays near 1.0.");
}
