//! CRC-32 (IEEE 802.3 polynomial) used to protect page payloads and footers.
//!
//! Implemented with a lazily built 256-entry lookup table; no external crate
//! needed.

/// Computes the CRC-32 of `data` (IEEE polynomial, reflected, init `!0`).
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let table = table();
    let mut crc = !0u32;
    for &byte in data {
        let idx = ((crc ^ u32::from(byte)) & 0xff) as usize;
        crc = (crc >> 8) ^ table[idx];
    }
    !crc
}

/// Incremental CRC-32 hasher for multi-part payloads.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Creates a fresh hasher.
    #[must_use]
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Feeds `data` into the hasher.
    pub fn update(&mut self, data: &[u8]) {
        let table = table();
        for &byte in data {
            let idx = ((self.state ^ u32::from(byte)) & 0xff) as usize;
            self.state = (self.state >> 8) ^ table[idx];
        }
    }

    /// Finishes and returns the checksum.
    #[must_use]
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ 0xedb8_8320 } else { crc >> 1 };
            }
            *entry = crc;
        }
        table
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414f_a339);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"hello columnar world";
        let mut h = Crc32::new();
        h.update(&data[..5]);
        h.update(&data[5..]);
        assert_eq!(h.finalize(), crc32(data));
    }

    #[test]
    fn different_data_different_crc() {
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
        assert_ne!(crc32(&[0]), crc32(&[0, 0]));
    }

    #[test]
    fn default_equals_new() {
        assert_eq!(Crc32::default().finalize(), Crc32::new().finalize());
    }
}
