//! Fig. 11 — preprocessing throughput of PreSto (one SmartSSD) vs
//! Disagg(N), normalized to Disagg(1).

use presto_bench::{banner, print_table};
use presto_core::experiments::fig11;
use presto_metrics::TextTable;

fn main() {
    banner(
        "Fig. 11: throughput, PreSto (1 SmartSSD) vs Disagg(N) [normalized to Disagg(1)]",
        "one SmartSSD beats 32 CPU cores; Disagg(64) wins back by ~27% at 2x the cost",
    );
    let groups = fig11();
    let header: Vec<String> = std::iter::once("model".to_owned())
        .chain(groups[0].bars.iter().map(|(n, _)| n.clone()))
        .collect();
    let mut t = TextTable::new(header);
    for g in &groups {
        let mut row = vec![g.model.clone()];
        row.extend(g.bars.iter().map(|(_, v)| format!("{v:.1}")));
        t.row(row);
    }
    print_table(&t);
    let mut ratios = Vec::new();
    for g in &groups {
        let d64 = g.bars.iter().find(|(n, _)| n == "Disagg(64)").expect("d64").1;
        let presto = g.bars.iter().find(|(n, _)| n.contains("PreSto")).expect("presto").1;
        ratios.push(d64 / presto);
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!("Disagg(64) / PreSto mean: {mean:.2}x (paper: ~1.27x)");
}
