//! Per-mini-batch workload quantities, the interface between data generation
//! and the hardware cost models.
//!
//! `presto-hwsim` prices preprocessing stages (Extract, Bucketize,
//! SigridHash, Log, format conversion, Load) from these first-order counts,
//! exactly the quantities the paper's own analytical model is driven by
//! (Section V-B).

use crate::config::RmConfig;
use crate::table::{generate_batch, RowBatch};
use crate::writer::write_partition;
use serde::{Deserialize, Serialize};

/// First-order workload description of preprocessing one mini-batch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Rows per mini-batch.
    pub rows: u64,
    /// Dense scalar values (`rows × num_dense`).
    pub dense_values: u64,
    /// Raw sparse list elements (`rows × num_sparse × avg_len`).
    pub sparse_values: u64,
    /// Bucketize outputs (`rows × num_generated`).
    pub generated_values: u64,
    /// Binary-search comparisons per Bucketize output (`⌈log₂ bucket_size⌉`).
    pub bucket_search_depth: u32,
    /// Encoded bytes extracted from storage for one mini-batch.
    pub raw_bytes: u64,
    /// Train-ready tensor bytes loaded to the trainer for one mini-batch.
    pub tensor_bytes: u64,
    /// Number of feature columns touched (drives per-column overheads).
    pub num_columns: u64,
}

impl WorkloadProfile {
    /// Analytic profile straight from a configuration (no data generation).
    ///
    /// Encoded sizes use the measured average densities of this crate's
    /// columnar encodings: ~4.1 B per dense value, ~3.3 B per sparse id
    /// (dictionary/delta-compressed from a 500k vocabulary) and ~1 B of list
    /// length metadata per row per sparse feature.
    #[must_use]
    pub fn from_config(config: &RmConfig) -> Self {
        let rows = config.batch_size as u64;
        let dense_values = config.dense_values_per_batch();
        let sparse_values = config.sparse_values_per_batch();
        let generated_values = config.generated_values_per_batch();
        let raw_bytes = (dense_values * 41) / 10
            + (sparse_values * 33) / 10
            + rows * config.num_sparse as u64
            + rows; // label column
        Self::assemble(config, rows, dense_values, sparse_values, generated_values, raw_bytes)
    }

    /// Profile with `raw_bytes` measured from a real generated partition.
    ///
    /// Generates `sample_rows` rows, serializes them with `presto-columnar`
    /// and extrapolates the encoded density to a full mini-batch. Slower but
    /// grounded in the actual format.
    #[must_use]
    pub fn measured(config: &RmConfig, sample_rows: usize, seed: u64) -> Self {
        let sample_rows = sample_rows.max(1);
        let batch = generate_batch(config, sample_rows, seed);
        let blob = write_partition(&batch).expect("generated batch serializes");
        let bytes_per_row = blob.as_bytes().len() as f64 / sample_rows as f64;
        let rows = config.batch_size as u64;
        let raw_bytes = (bytes_per_row * rows as f64) as u64;
        Self::assemble(
            config,
            rows,
            config.dense_values_per_batch(),
            config.sparse_values_per_batch(),
            config.generated_values_per_batch(),
            raw_bytes,
        )
    }

    /// Profile of an in-memory batch that has already been generated.
    #[must_use]
    pub fn of_batch(config: &RmConfig, batch: &RowBatch, encoded_bytes: u64) -> Self {
        let rows = batch.rows() as u64;
        let dense_values = rows * config.num_dense as u64;
        let sparse_values: u64 = (0..config.num_sparse)
            .map(|i| batch.column(&format!("sparse_{i}")).map_or(0, |c| c.element_count() as u64))
            .sum();
        let generated_values = rows * config.num_generated as u64;
        Self::assemble(config, rows, dense_values, sparse_values, generated_values, encoded_bytes)
    }

    fn assemble(
        config: &RmConfig,
        rows: u64,
        dense_values: u64,
        sparse_values: u64,
        generated_values: u64,
        raw_bytes: u64,
    ) -> Self {
        // Train-ready tensors: dense f32 matrix, sparse and generated ids as
        // int32 jagged values (TorchRec's KeyedJaggedTensor index dtype) plus
        // u32 offsets per sparse feature, i64 labels.
        let tensor_bytes = dense_values * 4
            + (sparse_values + generated_values) * 4
            + (config.num_sparse as u64 + config.num_generated as u64) * (rows + 1) * 4
            + rows * 8;
        WorkloadProfile {
            rows,
            dense_values,
            sparse_values,
            generated_values,
            bucket_search_depth: (config.bucket_size.max(2) as f64).log2().ceil() as u32,
            raw_bytes,
            tensor_bytes,
            num_columns: 1 + config.num_dense as u64 + config.num_sparse as u64,
        }
    }

    /// Total scalar elements transformed (inputs of the three key ops).
    #[must_use]
    pub fn transform_values(&self) -> u64 {
        self.dense_values + self.sparse_values + self.generated_values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rm1_profile_counts() {
        let p = WorkloadProfile::from_config(&RmConfig::rm1());
        assert_eq!(p.rows, 8192);
        assert_eq!(p.dense_values, 8192 * 13);
        assert_eq!(p.sparse_values, 8192 * 26);
        assert_eq!(p.generated_values, 8192 * 13);
        assert_eq!(p.bucket_search_depth, 10); // log2(1024)
    }

    #[test]
    fn bucket_depth_follows_bucket_size() {
        assert_eq!(WorkloadProfile::from_config(&RmConfig::rm4()).bucket_search_depth, 11);
        assert_eq!(WorkloadProfile::from_config(&RmConfig::rm5()).bucket_search_depth, 12);
    }

    #[test]
    fn production_models_have_much_bigger_batches() {
        let rm1 = WorkloadProfile::from_config(&RmConfig::rm1());
        let rm5 = WorkloadProfile::from_config(&RmConfig::rm5());
        assert!(rm5.raw_bytes > 10 * rm1.raw_bytes);
        assert!(rm5.tensor_bytes > 10 * rm1.tensor_bytes);
    }

    #[test]
    fn measured_profile_is_within_2x_of_analytic() {
        let mut config = RmConfig::rm1();
        config.batch_size = 2048;
        let analytic = WorkloadProfile::from_config(&config);
        let measured = WorkloadProfile::measured(&config, 512, 3);
        let ratio = measured.raw_bytes as f64 / analytic.raw_bytes as f64;
        assert!((0.5..2.0).contains(&ratio), "measured/analytic = {ratio}");
    }

    #[test]
    fn of_batch_counts_real_sparse_elements() {
        let mut config = RmConfig::rm2();
        config.batch_size = 128;
        let batch = generate_batch(&config, 128, 9);
        let p = WorkloadProfile::of_batch(&config, &batch, 1_000);
        let expected: u64 = (0..42)
            .map(|i| batch.column(&format!("sparse_{i}")).unwrap().element_count() as u64)
            .sum();
        assert_eq!(p.sparse_values, expected);
        assert_eq!(p.raw_bytes, 1_000);
    }

    #[test]
    fn tensor_bytes_cover_all_outputs() {
        let p = WorkloadProfile::from_config(&RmConfig::rm1());
        // Must at least contain the dense matrix and the id payloads.
        assert!(p.tensor_bytes > p.dense_values * 4);
        assert!(p.tensor_bytes > (p.sparse_values + p.generated_values) * 4);
    }

    #[test]
    fn transform_values_sums_components() {
        let p = WorkloadProfile::from_config(&RmConfig::rm3());
        assert_eq!(p.transform_values(), p.dense_values + p.sparse_values + p.generated_values);
    }
}
