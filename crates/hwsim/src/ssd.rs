//! Storage-device read model.

use crate::calib;
use crate::units::{BytesPerSec, Secs};

/// An NVMe storage device (plain SSD or the SSD half of a SmartSSD).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsdModel {
    read_bw: BytesPerSec,
    p2p_bw: BytesPerSec,
}

impl SsdModel {
    /// The PoC's NVMe device.
    #[must_use]
    pub fn nvme() -> Self {
        SsdModel {
            read_bw: BytesPerSec::new(calib::ssd::READ_BYTES_PER_SEC),
            p2p_bw: BytesPerSec::new(calib::ssd::P2P_BYTES_PER_SEC),
        }
    }

    /// A custom device.
    #[must_use]
    pub fn new(read_bw: BytesPerSec, p2p_bw: BytesPerSec) -> Self {
        SsdModel { read_bw, p2p_bw }
    }

    /// Host-path sequential read time for `bytes`.
    #[must_use]
    pub fn read_time(&self, bytes: u64) -> Secs {
        self.read_bw.time_for(bytes)
    }

    /// SSD→FPGA peer-to-peer read time for `bytes` (SmartSSD only).
    #[must_use]
    pub fn p2p_time(&self, bytes: u64) -> Secs {
        self.p2p_bw.time_for(bytes)
    }

    /// Host-path bandwidth.
    #[must_use]
    pub fn read_bandwidth(&self) -> BytesPerSec {
        self.read_bw
    }

    /// P2P bandwidth.
    #[must_use]
    pub fn p2p_bandwidth(&self) -> BytesPerSec {
        self.p2p_bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_is_slower_than_host_path() {
        let ssd = SsdModel::nvme();
        assert!(ssd.p2p_time(1 << 20) > ssd.read_time(1 << 20));
    }

    #[test]
    fn times_scale_linearly() {
        let ssd = SsdModel::new(BytesPerSec::gb(2.0), BytesPerSec::gb(1.0));
        assert!((ssd.read_time(2_000_000_000).seconds() - 1.0).abs() < 1e-9);
        assert!((ssd.p2p_time(2_000_000_000).seconds() - 2.0).abs() < 1e-9);
    }
}
