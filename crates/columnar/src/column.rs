//! Column chunks: a column's worth of pages for one row group.
//!
//! Two decode strategies coexist:
//!
//! * the page-at-a-time path ([`read_chunk_at`] / [`read_chunk_shared`]),
//!   which can hand out zero-copy views over aligned plain pages; and
//! * the **batched** path ([`read_chunk_batched`]), which decodes every
//!   integer page of a chunk straight into one set of output buffers via
//!   the `*_into` codec entry points — no per-page `Vec`, no concat copy.
//!   [`crate::FileReader::read_column_with`] routes multi-page and encoded
//!   chunks here, sizing the outputs exactly from the footer's column
//!   statistics.

use crate::array::Array;
use crate::compress::Compression;
use crate::encoding::{self, varint};
use crate::error::{ColumnarError, Result};
use crate::page::{self, DEFAULT_PAGE_ROWS};
use crate::schema::{DataType, WritePolicy};
use crate::stats::ColumnStats;

/// Slices `rows` rows starting at `start` out of an array.
///
/// Primitive payloads (and jagged *values*) are shared zero-copy windows
/// over the source array's buffers; only jagged offsets are materialized,
/// because they must be rebased to start at zero.
///
/// # Panics
///
/// Panics when the range is out of bounds; callers slice by page size.
#[must_use]
pub fn slice_array(array: &Array, start: usize, rows: usize) -> Array {
    match array {
        Array::Int64(v) => Array::Int64(v.slice(start, rows)),
        Array::Float32(v) => Array::Float32(v.slice(start, rows)),
        Array::Float64(v) => Array::Float64(v.slice(start, rows)),
        Array::ListInt64 { offsets, values } => {
            let base = offsets[start];
            let end = offsets[start + rows];
            let new_offsets: crate::Buffer<u32> =
                offsets[start..=start + rows].iter().map(|&o| o - base).collect();
            let new_values = values.slice(base as usize, (end - base) as usize);
            Array::ListInt64 { offsets: new_offsets, values: new_values }
        }
    }
}

/// Concatenates arrays of the same type into one.
///
/// A single-part concat is zero-copy: the result shares the input's
/// buffers. This is the common case on the read path (one page per chunk,
/// one row group per partition), so decoded column data is typically never
/// recopied on its way to the preprocessing kernels.
///
/// # Errors
///
/// Returns [`ColumnarError::InvalidSchema`] when types differ, or
/// [`ColumnarError::ValueOutOfRange`] when jagged offsets overflow `u32`.
pub fn concat_arrays(parts: &[Array]) -> Result<Array> {
    let Some(first) = parts.first() else {
        return Err(ColumnarError::InvalidSchema { detail: "concat of zero arrays".into() });
    };
    if parts.len() == 1 {
        return Ok(first.clone());
    }
    let dt = first.data_type();
    if parts.iter().any(|p| p.data_type() != dt) {
        return Err(ColumnarError::InvalidSchema {
            detail: "concat of arrays with differing types".into(),
        });
    }
    match dt {
        DataType::Int64 => {
            let mut out = Vec::with_capacity(parts.iter().map(Array::element_count).sum());
            for p in parts {
                out.extend_from_slice(p.as_int64().expect("checked type"));
            }
            Ok(Array::Int64(out.into()))
        }
        DataType::Float32 => {
            let mut out = Vec::with_capacity(parts.iter().map(Array::element_count).sum());
            for p in parts {
                out.extend_from_slice(p.as_float32().expect("checked type"));
            }
            Ok(Array::Float32(out.into()))
        }
        DataType::Float64 => {
            let mut out = Vec::with_capacity(parts.iter().map(Array::element_count).sum());
            for p in parts {
                out.extend_from_slice(p.as_float64().expect("checked type"));
            }
            Ok(Array::Float64(out.into()))
        }
        DataType::ListInt64 => {
            let mut offsets = vec![0u32];
            let mut values: Vec<i64> = Vec::new();
            for p in parts {
                let (po, pv) = p.as_list_int64().expect("checked type");
                let base = values.len() as u64;
                for &o in &po[1..] {
                    let off = base + u64::from(o);
                    let off = u32::try_from(off).map_err(|_| ColumnarError::ValueOutOfRange {
                        detail: "concatenated jagged array overflows u32 offsets".into(),
                    })?;
                    offsets.push(off);
                }
                values.extend_from_slice(pv);
            }
            Ok(Array::ListInt64 { offsets: offsets.into(), values: values.into() })
        }
    }
}

/// Writes `array` as a column chunk (page count + pages), returning its stats.
///
/// # Errors
///
/// Propagates page encoding failures.
pub fn write_chunk(array: &Array, page_rows: usize, out: &mut Vec<u8>) -> Result<ColumnStats> {
    write_chunk_compressed(array, page_rows, Compression::None, out)
}

/// Like [`write_chunk`] with per-page payload compression (applied to every
/// column type — the per-column policy path is [`write_chunk_policy`]).
///
/// # Errors
///
/// Propagates page encoding failures.
pub fn write_chunk_compressed(
    array: &Array,
    page_rows: usize,
    compression: Compression,
    out: &mut Vec<u8>,
) -> Result<ColumnStats> {
    let policy = WritePolicy::from_env().with_compression(compression).compressing_hot_columns();
    write_chunk_policy(array, page_rows, &policy, out)
}

/// Writes `array` as a column chunk under a [`WritePolicy`]: the policy
/// picks each page's integer encoding and decides from the column's type
/// whether payloads are compressed (the "uncompressed-if-hot" rule).
///
/// # Errors
///
/// Propagates page encoding failures.
pub fn write_chunk_policy(
    array: &Array,
    page_rows: usize,
    policy: &WritePolicy,
    out: &mut Vec<u8>,
) -> Result<ColumnStats> {
    // The element ceiling holds per chunk, not just per page: readers use
    // it to bound whole-chunk decode allocations against crafted footers.
    if array.len() > encoding::MAX_PAGE_ELEMENTS
        || array.element_count() > encoding::MAX_PAGE_ELEMENTS
    {
        return Err(ColumnarError::ValueOutOfRange {
            detail: format!(
                "column chunk of {} rows / {} elements exceeds MAX_PAGE_ELEMENTS; \
                 split the row group",
                array.len(),
                array.element_count()
            ),
        });
    }
    let page_rows = page_rows.max(1);
    let rows = array.len();
    let n_pages = rows.div_ceil(page_rows).max(1);
    varint::write_u64(out, n_pages as u64);
    let mut start = 0usize;
    for _ in 0..n_pages {
        let take = page_rows.min(rows - start);
        let page_arr = slice_array(array, start, take);
        page::write_page_policy(&page_arr, policy, out)?;
        start += take;
    }
    let mut stats = ColumnStats::from_array(array);
    stats.pages = n_pages as u64;
    Ok(stats)
}

/// Reads a column chunk written by [`write_chunk`], for a `buf` starting at
/// the beginning of the written buffer (alignment base 0).
///
/// # Errors
///
/// Propagates page decode failures.
pub fn read_chunk(buf: &[u8], pos: &mut usize, data_type: DataType) -> Result<Array> {
    read_chunk_at(buf, pos, data_type, 0)
}

/// Like [`read_chunk`] for a `buf` sliced (or staged) from `base` bytes into
/// the written file, so page payload alignment can be recomputed.
///
/// # Errors
///
/// Same as [`read_chunk`].
pub fn read_chunk_at(buf: &[u8], pos: &mut usize, data_type: DataType, base: u64) -> Result<Array> {
    let n_pages = varint::read_u64(buf, pos)? as usize;
    // Every page costs at least a header byte, so the remaining input
    // bounds any legitimate page count — a corrupt count cannot
    // over-reserve.
    let mut parts = Vec::with_capacity(n_pages.min(buf.len().saturating_sub(*pos)));
    for _ in 0..n_pages {
        parts.push(page::read_page_at(buf, pos, data_type, base)?);
    }
    concat_arrays(&parts)
}

/// Decodes a whole chunk of an integer column (`Int64` / `ListInt64`) in
/// one pass: every page's id and offset blocks land directly in a single
/// set of exactly-sized output buffers, with page payload staging (LZ,
/// length streams) recycled through the caller's [`crate::ReadScratch`].
///
/// `rows` and `elements` come from the footer's column statistics **for the
/// one row group being read** — chunk stats are per-group, so a random
/// row-group access (the `PSTOCOL4` shuffled-read path) sizes its output
/// buffers from that group's own index entry, never from file totals. The
/// last row group of a partition whose row count is not a multiple of the
/// group size therefore allocates exactly its short length. They
/// size the outputs and every page's decoded counts are validated against
/// the running totals. `staging` and `lengths` are recycled intermediates
/// (see [`ReadScratch::decode_buffers`](crate::ReadScratch)). Float columns
/// and zero-copy candidates stay on the page-at-a-time path
/// ([`read_chunk_at`] / [`read_chunk_shared`]).
///
/// # Errors
///
/// Same as [`read_chunk_at`], plus [`ColumnarError::CountMismatch`] when
/// the pages disagree with the declared totals.
#[allow(clippy::too_many_arguments)]
pub fn read_chunk_batched(
    buf: &[u8],
    pos: &mut usize,
    data_type: DataType,
    base: u64,
    rows: usize,
    elements: usize,
    staging: &mut Vec<u8>,
    lengths: &mut Vec<u64>,
) -> Result<Array> {
    debug_assert!(matches!(data_type, DataType::Int64 | DataType::ListInt64));
    // The writer enforces the element ceiling per *chunk* (see
    // `write_chunk_policy`), so larger declared totals are corruption; this
    // bounds the whole-chunk decode the same way the page header check
    // bounds one page.
    if rows > encoding::MAX_PAGE_ELEMENTS || elements > encoding::MAX_PAGE_ELEMENTS {
        return Err(ColumnarError::CorruptFile {
            detail: format!("chunk declares {rows} rows / {elements} elements"),
        });
    }
    let n_pages = varint::read_u64(buf, pos)? as usize;
    // Clamp the exact-size reservations to what the remaining input could
    // legitimately describe (codecs emit no fewer than one byte per ~64
    // values after framing), in case the footer stats are corrupt.
    let remaining = buf.len().saturating_sub(*pos);
    let cap_limit = remaining.saturating_mul(64).max(1024);
    // Running totals are checked against the declared chunk counts *before*
    // each page's payload is decoded: the per-page element ceiling bounds
    // one page, but only this check stops a crafted many-tiny-page chunk
    // from amplifying past it (each page would otherwise materialize its
    // full declared count before the post-loop totals comparison ran).
    let mut total_rows = 0usize;
    let check_budget = |total: usize, add: usize, declared: usize| -> Result<usize> {
        let next = total.saturating_add(add);
        if next > declared {
            return Err(ColumnarError::CountMismatch { declared, actual: next });
        }
        Ok(next)
    };
    match data_type {
        DataType::Int64 => {
            let mut values: Vec<i64> = Vec::with_capacity(rows.min(cap_limit));
            for _ in 0..n_pages {
                let header = page::read_page_header(buf, pos, base)?;
                total_rows = check_budget(total_rows, header.rows, rows)?;
                let (payload, _) = page::page_payload(&header, buf, staging)?;
                let mut p = 0usize;
                encoding::decode_i64_into(
                    header.encoding,
                    payload,
                    &mut p,
                    header.rows,
                    &mut values,
                )?;
            }
            if total_rows != rows {
                return Err(ColumnarError::CountMismatch { declared: rows, actual: total_rows });
            }
            let array = Array::Int64(values.into());
            array.validate()?;
            Ok(array)
        }
        _ => {
            let mut offsets: Vec<u32> = Vec::with_capacity(rows.saturating_add(1).min(cap_limit));
            offsets.push(0);
            let mut values: Vec<i64> = Vec::with_capacity(elements.min(cap_limit));
            let mut total_elements = 0usize;
            for _ in 0..n_pages {
                let header = page::read_page_header(buf, pos, base)?;
                total_rows = check_budget(total_rows, header.rows, rows)?;
                total_elements = check_budget(total_elements, header.elements, elements)?;
                let (payload, _) = page::page_payload(&header, buf, staging)?;
                let (value_enc, value_start) =
                    page::read_list_prefix(payload, header.rows, lengths)?;
                let mut p = value_start;
                encoding::decode_i64_into(
                    value_enc,
                    payload,
                    &mut p,
                    header.elements,
                    &mut values,
                )?;
                page::extend_offsets(lengths, header.rows, &mut offsets)?;
            }
            if total_rows != rows {
                return Err(ColumnarError::CountMismatch { declared: rows, actual: total_rows });
            }
            if total_elements != elements {
                return Err(ColumnarError::CountMismatch {
                    declared: elements,
                    actual: total_elements,
                });
            }
            let array = Array::ListInt64 { offsets: offsets.into(), values: values.into() };
            array.validate()?;
            Ok(array)
        }
    }
}

/// Prefix-pushdown chunk decode for list columns: like the list arm of
/// [`read_chunk_batched`], but materializes only the first `prefix` elements
/// of every list. The RLE length stream still decodes fully (it is cheap and
/// row alignment depends on it); the value stream decodes through
/// [`encoding::decode_i64_ranges`], which skips storing out-of-prefix
/// elements and hard-stops after the last needed one. The returned array's
/// offsets already reflect the truncation — downstream `FirstX` becomes a
/// no-op.
///
/// All of [`read_chunk_batched`]'s budget discipline applies unchanged: the
/// chunk-level [`encoding::MAX_PAGE_ELEMENTS`] ceiling, per-page running
/// totals checked before each decode, and reservations clamped to what the
/// remaining input could describe. Additionally each page's length stream
/// must sum to its declared element count before any value byte is decoded,
/// so a crafted header cannot widen the ranged decode's budget.
///
/// # Errors
///
/// Same as [`read_chunk_batched`].
#[allow(clippy::too_many_arguments)]
pub fn read_chunk_prefix(
    buf: &[u8],
    pos: &mut usize,
    base: u64,
    rows: usize,
    elements: usize,
    prefix: usize,
    staging: &mut Vec<u8>,
    lengths: &mut Vec<u64>,
) -> Result<Array> {
    if rows > encoding::MAX_PAGE_ELEMENTS || elements > encoding::MAX_PAGE_ELEMENTS {
        return Err(ColumnarError::CorruptFile {
            detail: format!("chunk declares {rows} rows / {elements} elements"),
        });
    }
    let n_pages = varint::read_u64(buf, pos)? as usize;
    let remaining = buf.len().saturating_sub(*pos);
    let cap_limit = remaining.saturating_mul(64).max(1024);
    let mut total_rows = 0usize;
    let mut total_elements = 0usize;
    let check_budget = |total: usize, add: usize, declared: usize| -> Result<usize> {
        let next = total.saturating_add(add);
        if next > declared {
            return Err(ColumnarError::CountMismatch { declared, actual: next });
        }
        Ok(next)
    };
    let mut offsets: Vec<u32> = Vec::with_capacity(rows.saturating_add(1).min(cap_limit));
    offsets.push(0);
    let mut values: Vec<i64> =
        Vec::with_capacity(rows.saturating_mul(prefix).min(elements).min(cap_limit));
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    for _ in 0..n_pages {
        let header = page::read_page_header(buf, pos, base)?;
        total_rows = check_budget(total_rows, header.rows, rows)?;
        total_elements = check_budget(total_elements, header.elements, elements)?;
        let (payload, _) = page::page_payload(&header, buf, staging)?;
        let (value_enc, value_start) = page::read_list_prefix(payload, header.rows, lengths)?;
        // Turn per-list prefixes into sorted element ranges over this page's
        // value stream, merging lists whose kept prefixes are contiguous
        // (always the case while lists are shorter than `prefix`).
        ranges.clear();
        let mut start = 0usize;
        for &len in lengths.iter() {
            let len = usize::try_from(len).map_err(|_| ColumnarError::CorruptFile {
                detail: "list length exceeds usize".into(),
            })?;
            let stop = start.saturating_add(len.min(prefix));
            match ranges.last_mut() {
                Some(last) if last.1 == start => last.1 = stop,
                _ if stop > start => ranges.push((start, stop)),
                _ => {}
            }
            start = start.saturating_add(len);
        }
        if start != header.elements {
            return Err(ColumnarError::CountMismatch { declared: header.elements, actual: start });
        }
        let mut p = value_start;
        encoding::decode_i64_ranges(
            value_enc,
            payload,
            &mut p,
            header.elements,
            &ranges,
            &mut values,
        )?;
        page::extend_offsets_clamped(lengths, prefix, header.rows, &mut offsets)?;
    }
    if total_rows != rows {
        return Err(ColumnarError::CountMismatch { declared: rows, actual: total_rows });
    }
    if total_elements != elements {
        return Err(ColumnarError::CountMismatch { declared: elements, actual: total_elements });
    }
    let array = Array::ListInt64 { offsets: offsets.into(), values: values.into() };
    array.validate()?;
    Ok(array)
}

/// Reads the chunk at `offset..offset + byte_len` of a shared in-memory
/// file, decoding aligned plain pages as zero-copy views over `shared`
/// (see [`page::read_page_shared`]). Single-page chunks — the common case —
/// reach the caller without any value copy.
///
/// # Errors
///
/// Same as [`read_chunk`], plus [`crate::ColumnarError::UnexpectedEof`] when
/// the range exceeds the blob.
pub fn read_chunk_shared(
    shared: &std::sync::Arc<Vec<u8>>,
    offset: u64,
    byte_len: usize,
    data_type: DataType,
) -> Result<Array> {
    let start = usize::try_from(offset).map_err(|_| crate::ColumnarError::Io {
        detail: format!("chunk offset {offset} out of addressable range"),
    })?;
    let end = start
        .checked_add(byte_len)
        .filter(|&e| e <= shared.len())
        .ok_or(crate::ColumnarError::UnexpectedEof { context: "column chunk range" })?;
    let buf = &shared[..end];
    let mut pos = start;
    let n_pages = varint::read_u64(buf, &mut pos)? as usize;
    let mut parts = Vec::with_capacity(n_pages.min(end.saturating_sub(pos)));
    for _ in 0..n_pages {
        parts.push(page::read_page_shared(shared, end, &mut pos, data_type)?);
    }
    concat_arrays(&parts)
}

/// Peeks the page count of the chunk at `offset` without decoding.
///
/// # Errors
///
/// Propagates varint decode errors.
pub(crate) fn peek_page_count(buf: &[u8], offset: usize) -> Result<usize> {
    let mut pos = offset;
    Ok(varint::read_u64(buf, &mut pos)? as usize)
}

/// Convenience wrapper using [`DEFAULT_PAGE_ROWS`].
///
/// # Errors
///
/// Same as [`write_chunk`].
pub fn write_chunk_default(array: &Array, out: &mut Vec<u8>) -> Result<ColumnStats> {
    write_chunk(array, DEFAULT_PAGE_ROWS, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk_roundtrip(array: Array, page_rows: usize) {
        let mut buf = Vec::new();
        let stats = write_chunk(&array, page_rows, &mut buf).unwrap();
        assert_eq!(stats.rows, array.len() as u64);
        let mut pos = 0;
        let back = read_chunk(&buf, &mut pos, array.data_type()).unwrap();
        assert_eq!(back, array);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn multi_page_int_chunk() {
        chunk_roundtrip(Array::Int64((0..10_000).collect()), 1024);
    }

    #[test]
    fn multi_page_list_chunk() {
        let lists: Vec<Vec<i64>> = (0..3000).map(|i| vec![i as i64; (i % 5) + 1]).collect();
        chunk_roundtrip(Array::from_lists(lists).unwrap(), 512);
    }

    #[test]
    fn single_row_pages() {
        chunk_roundtrip(Array::Float32(vec![1.0, 2.0, 3.0].into()), 1);
    }

    #[test]
    fn empty_chunk_roundtrips() {
        chunk_roundtrip(Array::Int64(vec![].into()), 4096);
        chunk_roundtrip(Array::from_lists(Vec::<Vec<i64>>::new()).unwrap(), 4096);
    }

    #[test]
    fn batched_reader_matches_page_at_a_time() {
        let array = Array::Int64((0..5000).map(|i| i * 7 % 997).collect());
        let mut buf = Vec::new();
        write_chunk(&array, 512, &mut buf).unwrap();
        let mut pos = 0;
        let (mut staging, mut lengths) = (Vec::new(), Vec::new());
        let back = read_chunk_batched(
            &buf,
            &mut pos,
            DataType::Int64,
            0,
            5000,
            5000,
            &mut staging,
            &mut lengths,
        )
        .unwrap();
        assert_eq!(back, array);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn batched_reader_stops_before_decoding_past_declared_totals() {
        // Ten 512-row pages but a declared total of 512: the second page's
        // header must trip the budget check *before* its payload decodes —
        // this is what stops a many-tiny-page chunk from amplifying the
        // per-page element ceiling.
        let array = Array::Int64((0..5120).collect());
        let mut buf = Vec::new();
        write_chunk(&array, 512, &mut buf).unwrap();
        let mut pos = 0;
        let (mut staging, mut lengths) = (Vec::new(), Vec::new());
        let err = read_chunk_batched(
            &buf,
            &mut pos,
            DataType::Int64,
            0,
            512,
            512,
            &mut staging,
            &mut lengths,
        )
        .unwrap_err();
        assert!(matches!(err, ColumnarError::CountMismatch { .. }));
    }

    #[test]
    fn batched_reader_rejects_absurd_chunk_totals() {
        let (mut staging, mut lengths) = (Vec::new(), Vec::new());
        let mut pos = 0;
        let err = read_chunk_batched(
            &[1, 0, 0],
            &mut pos,
            DataType::ListInt64,
            0,
            usize::MAX,
            usize::MAX,
            &mut staging,
            &mut lengths,
        )
        .unwrap_err();
        assert!(matches!(err, ColumnarError::CorruptFile { .. }));
    }

    #[test]
    fn slice_rebases_jagged_offsets() {
        let a = Array::from_lists([vec![1i64], vec![2, 3], vec![4, 5, 6], vec![]]).unwrap();
        let s = slice_array(&a, 1, 2);
        assert_eq!(s.len(), 2);
        assert_eq!(s.list_at(0), &[2, 3]);
        assert_eq!(s.list_at(1), &[4, 5, 6]);
        s.validate().unwrap();
    }

    #[test]
    fn concat_rejects_mixed_types() {
        let err = concat_arrays(&[Array::Int64(vec![1].into()), Array::Float32(vec![1.0].into())])
            .unwrap_err();
        assert!(matches!(err, ColumnarError::InvalidSchema { .. }));
    }

    #[test]
    fn concat_of_lists_preserves_rows() {
        let a = Array::from_lists([vec![1i64], vec![2, 3]]).unwrap();
        let b = Array::from_lists([vec![], vec![4i64, 5]]).unwrap();
        let c = concat_arrays(&[a, b]).unwrap();
        assert_eq!(c.len(), 4);
        assert_eq!(c.list_at(3), &[4, 5]);
        c.validate().unwrap();
    }

    #[test]
    fn zero_page_rows_is_clamped() {
        chunk_roundtrip(Array::Int64(vec![5, 6].into()), 0);
    }
}
