//! CI bench-regression gate: a smoke profile of the three headline hot
//! paths, compared against a checked-in baseline.
//!
//! Measures (best-of-N wall-clock, small enough for a CI leg):
//!
//! * `extract_rm1_rows_per_sec` — the Extract stage alone
//!   (`extract_partition_with`: projected read + block decode into one
//!   `RowBatch`), the `extract_partition/rm1` criterion bench's subject and
//!   the path the delta-bitpacked codec accelerates.
//! * `preprocess_partition_rm1_rows_per_sec` — the single-worker
//!   Extract→Transform→format pipeline over one RM1 partition
//!   (`preprocess_partition_with`, recycled scratch), the
//!   `preprocess_partition/rm1` criterion bench's subject.
//! * `streaming_end_to_end_rows_per_sec` — the streaming executor feeding
//!   the consuming trainer (`BatchStream::spawn` → `Trainer`),
//!   consumer-side goodput.
//! * `split_end_to_end_rows_per_sec` — the hybrid split-placement executor
//!   (`SplitBatchStream::spawn`: ISP stage prefix pipelined against the
//!   host suffix at the cost-model boundary) feeding the same trainer.
//! * `multi_tenant_rows_per_sec` — two concurrent RM1 jobs through the
//!   multi-tenant [`PreprocessService`] sharing one pool worker under
//!   weighted-fair dispatch: aggregate delivered rows over wall-clock.
//! * `shuffled_stream_rows_per_sec` — the shuffled random-access epoch
//!   (`ShuffledStream::spawn` over a row-group-indexed `PSTOCOL4` dataset,
//!   in-order delivery through the reorder heap) feeding the same trainer:
//!   the price of shuffling relative to `streaming_end_to_end`.
//! * `extract_longseq_rows_per_sec` — the Extract stage on the
//!   long-sequence scenario (`RmConfig::rm_longseq` through
//!   `PlanGraph::long_history`) with prefix pushdown active: the plan's
//!   `Prefix(8)` requirements let the reader decode only the head of each
//!   512-element list. The full-decode rate is printed alongside for the
//!   speedup figure; the gated number is the pushdown rate.
//!
//! Writes the measurements to `BENCH_ci.json` (uploaded as a CI artifact),
//! appends a per-metric delta table to `$GITHUB_STEP_SUMMARY` when that
//! variable is set (the job summary page shows the deltas even on green
//! runs), and **fails with exit code 1** when any metric regresses more
//! than 15% (override with `CI_BENCH_MAX_REGRESSION`) against
//! `BENCH_baseline.json` in the working directory.
//!
//! Refreshing the baseline after an intentional perf change:
//!
//! ```text
//! CI_BENCH_WRITE_BASELINE=1 cargo run --release -p presto-bench --bin ci-bench
//! git add BENCH_baseline.json   # commit alongside the change that moved it
//! ```
//!
//! CI also runs a `baseline-check` step that fails when
//! `BENCH_baseline.json` is older (by commit) than the last change to the
//! measured code paths — a stale baseline silently weakens the gate.

use presto_bench::{banner, parse_flat_json, print_table, render_flat_json};
use presto_columnar::ReadScratch;
use presto_core::placement::{place_stages, OpCostModel};
use presto_core::{
    JobSpec, PreprocessService, ServiceConfig, SplitBatchStream, Trainer, TrainerConfig,
};
use presto_datagen::{generate_batch, write_partition, Dataset, RmConfig};
use presto_hwsim::fpga::IspModel;
use presto_metrics::TextTable;
use presto_ops::{
    extract_partition_with, preprocess_partition_with, BatchStream, FleetConfig, PreprocessPlan,
    ScratchSpace, ShuffleSpec, ShuffledStream,
};
use std::time::Instant;

const BASELINE_PATH: &str = "BENCH_baseline.json";
const OUTPUT_PATH: &str = "BENCH_ci.json";
const DEFAULT_MAX_REGRESSION: f64 = 0.15;

/// Best-of-`reps` throughput (rows/s) of one measured closure.
fn best_of<F: FnMut() -> usize>(reps: usize, mut run: F) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..reps {
        let start = Instant::now();
        let rows = run();
        let tput = rows as f64 / start.elapsed().as_secs_f64().max(1e-12);
        best = best.max(tput);
    }
    best
}

fn extract_rm1() -> f64 {
    let mut config = RmConfig::rm1();
    config.batch_size = 4096;
    let plan = PreprocessPlan::from_config(&config, 1).expect("plan");
    let batch = generate_batch(&config, 4096, 7);
    let blob = write_partition(&batch).expect("serializes");
    let mut scratch = ReadScratch::new();
    extract_partition_with(&plan, blob.clone(), &mut scratch).expect("extracts");
    best_of(5, || {
        let (rb, _) = extract_partition_with(&plan, blob.clone(), &mut scratch).expect("extracts");
        rb.rows()
    })
}

fn preprocess_partition_rm1() -> f64 {
    let mut config = RmConfig::rm1();
    config.batch_size = 4096;
    let plan = PreprocessPlan::from_config(&config, 1).expect("plan");
    let batch = generate_batch(&config, 4096, 7);
    let blob = write_partition(&batch).expect("serializes");
    let mut scratch = ScratchSpace::new();
    // Warm the scratch outside the measurement, like the criterion bench.
    preprocess_partition_with(&plan, blob.clone(), &mut scratch).expect("preprocesses");
    best_of(5, || {
        let (mb, _) =
            preprocess_partition_with(&plan, blob.clone(), &mut scratch).expect("preprocesses");
        mb.rows()
    })
}

fn streaming_end_to_end() -> f64 {
    let mut config = RmConfig::rm1();
    config.batch_size = 1024;
    let plan = PreprocessPlan::from_config(&config, 1).expect("plan");
    let ds = Dataset::generate(&config, 8, 1024, 2, 7).expect("dataset");
    let trainer = Trainer::new(TrainerConfig::instant());
    best_of(3, || {
        let stream = BatchStream::spawn(&plan, ds.partitions(), &FleetConfig::new(2, 4));
        let report = trainer.run(stream).expect("trains");
        report.rows
    })
}

fn split_end_to_end() -> f64 {
    let mut config = RmConfig::rm1();
    config.batch_size = 1024;
    let plan = PreprocessPlan::from_config(&config, 1).expect("plan");
    let model = OpCostModel::analytic(&IspModel::smartssd());
    let placement = place_stages(&plan, 1024, &model);
    let split = plan.split(&placement.fleet_assignment()).expect("splits");
    let ds = Dataset::generate(&config, 8, 1024, 2, 7).expect("dataset");
    let trainer = Trainer::new(TrainerConfig::instant());
    best_of(3, || {
        let config = FleetConfig::new(2, 4).with_host_workers(2);
        let stream = SplitBatchStream::spawn(&plan, &split, ds.partitions(), &config);
        let report = trainer.run(stream).expect("trains");
        report.rows
    })
}

/// Two concurrent RM1 jobs through the multi-tenant service on one shared
/// pool worker: the aggregate goodput the weighted-fair dispatcher
/// sustains when tenants contend for the same device fleet.
fn multi_tenant() -> f64 {
    let mut config = RmConfig::rm1();
    config.batch_size = 1024;
    let plan = PreprocessPlan::from_config(&config, 1).expect("plan");
    let ds = Dataset::generate(&config, 6, 1024, 2, 7).expect("dataset");
    best_of(3, || {
        let service = PreprocessService::new(
            ServiceConfig::new(1).with_max_active_jobs(2).with_job_capacity(ds.partitions().len()),
        );
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let spec =
                    JobSpec::new(format!("tenant-{i}"), plan.clone(), ds.partitions().to_vec());
                service.submit(spec).expect("an idle pool admits both tenants")
            })
            .collect();
        let rows: usize = std::thread::scope(|scope| {
            let joins: Vec<_> = handles
                .into_iter()
                .map(|h| {
                    scope.spawn(move || {
                        h.map(|item| item.expect("preprocesses").batch.rows()).sum::<usize>()
                    })
                })
                .collect();
            joins.into_iter().map(|j| j.join().expect("tenant drains")).sum()
        });
        let _ = service.shutdown();
        rows
    })
}

/// The prefix-pushdown Extract on the long-sequence scenario
/// (`RmConfig::rm_longseq`: average list length 512, skewed, consumed
/// through `FirstX(8)`-headed chains): the plan derives `Prefix(8)` for
/// every sparse column, so the value streams decode only ~8/512 of their
/// elements. Prints the full-decode rate of the same partition alongside,
/// so the pushdown speedup is a visible figure on every CI run; the gated
/// metric is the pushdown rate.
fn extract_longseq() -> f64 {
    use presto_columnar::FileReader;
    use presto_ops::{extract_columns_from_reader, PlanGraph};
    let mut config = RmConfig::rm_longseq();
    config.batch_size = 2048;
    let graph = PlanGraph::long_history(&config, 1, 8).expect("graph");
    let plan = PreprocessPlan::compile(graph, &config).expect("plan");
    let batch = generate_batch(&config, 2048, 7);
    let blob = write_partition(&batch).expect("serializes");
    let mut scratch = ReadScratch::new();
    extract_partition_with(&plan, blob.clone(), &mut scratch).expect("extracts");
    let pushdown = best_of(5, || {
        let (rb, _) = extract_partition_with(&plan, blob.clone(), &mut scratch).expect("extracts");
        rb.rows()
    });
    let reader = FileReader::open(blob).expect("opens");
    let full = best_of(5, || {
        extract_columns_from_reader(&reader, plan.required_columns(), &mut scratch)
            .expect("full decode")
            .rows()
    });
    println!(
        "  extract_longseq: pushdown {pushdown:.0} rows/s vs full decode {full:.0} rows/s \
         ({:.1}x)",
        pushdown / full.max(1e-12)
    );
    pushdown
}

/// The shuffled-epoch pipeline: row groups of a `PSTOCOL4` dataset in a
/// seeded permutation, delivered in permutation order to the trainer.
/// Groups of 256 rows give 32 shuffle units over the same data volume as
/// `streaming_end_to_end`, so the delta between the two metrics is the
/// cost of random access + reorder delivery.
fn shuffled_stream() -> f64 {
    let mut config = RmConfig::rm1();
    config.batch_size = 1024;
    let plan = PreprocessPlan::from_config(&config, 1).expect("plan");
    let ds = Dataset::generate_grouped(&config, 8, 1024, 2, 7, 256).expect("dataset");
    let trainer = Trainer::new(TrainerConfig::instant());
    best_of(3, || {
        let stream = ShuffledStream::spawn(
            &plan,
            ds.partitions(),
            ShuffleSpec::new(42),
            &FleetConfig::new(2, 4),
        )
        .expect("spawns");
        let report = trainer.run(stream).expect("trains");
        report.rows
    })
}

/// Appends the per-metric delta table to the GitHub Actions job summary
/// (`$GITHUB_STEP_SUMMARY`), so reviewers see the deltas without opening
/// logs — including on green runs. No-op outside CI.
fn write_step_summary(rows: &[[String; 5]], max_regression: f64, failed: bool) {
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else {
        return;
    };
    let mut md = String::from("## Bench-regression gate\n\n");
    md.push_str("| metric | baseline rows/s | measured rows/s | delta | verdict |\n");
    md.push_str("|---|---:|---:|---:|---|\n");
    for [key, base, now, delta, verdict] in rows {
        let icon = if verdict == "ok" { "✅ ok" } else { "❌ REGRESSED" };
        md.push_str(&format!("| `{key}` | {base} | {now} | {delta} | {icon} |\n"));
    }
    md.push_str(&format!(
        "\n{} (threshold {:.0}%; refresh: `CI_BENCH_WRITE_BASELINE=1 cargo run --release \
         -p presto-bench --bin ci-bench`)\n",
        if failed { "**Gate FAILED**" } else { "Gate passed" },
        max_regression * 100.0
    ));
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, md.as_bytes()));
    if let Err(e) = appended {
        eprintln!("warning: could not write job summary to {path}: {e}");
    }
}

fn main() {
    banner(
        "CI bench-regression gate",
        "throughput must stay within 15% of the checked-in baseline",
    );
    let measured = vec![
        ("extract_rm1_rows_per_sec".to_owned(), extract_rm1()),
        ("preprocess_partition_rm1_rows_per_sec".to_owned(), preprocess_partition_rm1()),
        ("streaming_end_to_end_rows_per_sec".to_owned(), streaming_end_to_end()),
        ("split_end_to_end_rows_per_sec".to_owned(), split_end_to_end()),
        ("multi_tenant_rows_per_sec".to_owned(), multi_tenant()),
        ("shuffled_stream_rows_per_sec".to_owned(), shuffled_stream()),
        ("extract_longseq_rows_per_sec".to_owned(), extract_longseq()),
    ];
    std::fs::write(OUTPUT_PATH, render_flat_json(&measured)).expect("write BENCH_ci.json");
    println!("wrote {OUTPUT_PATH}");

    if std::env::var("CI_BENCH_WRITE_BASELINE").is_ok_and(|v| v == "1") {
        std::fs::write(BASELINE_PATH, render_flat_json(&measured))
            .expect("write BENCH_baseline.json");
        println!("refreshed {BASELINE_PATH}; commit it alongside your change");
        return;
    }

    let Ok(baseline_text) = std::fs::read_to_string(BASELINE_PATH) else {
        eprintln!(
            "error: {BASELINE_PATH} not found — run with CI_BENCH_WRITE_BASELINE=1 \
             from the repository root and commit the result"
        );
        std::process::exit(1);
    };
    let baseline = parse_flat_json(&baseline_text);
    if baseline.is_empty() {
        eprintln!(
            "error: no numeric metrics parsed from {BASELINE_PATH} — corrupt baseline; \
             refresh it with CI_BENCH_WRITE_BASELINE=1"
        );
        std::process::exit(1);
    }
    let max_regression = std::env::var("CI_BENCH_MAX_REGRESSION")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(DEFAULT_MAX_REGRESSION);

    let mut table =
        TextTable::new(vec!["metric", "baseline rows/s", "measured rows/s", "delta", "verdict"]);
    let mut rows: Vec<[String; 5]> = Vec::new();
    let mut failed = false;
    for (key, base) in &baseline {
        let Some((_, now)) = measured.iter().find(|(k, _)| k == key) else {
            eprintln!("error: baseline metric {key} is no longer measured");
            failed = true;
            continue;
        };
        let delta = now / base - 1.0;
        let regressed = delta < -max_regression;
        failed |= regressed;
        rows.push([
            key.clone(),
            format!("{base:.0}"),
            format!("{now:.0}"),
            format!("{:+.1}%", delta * 100.0),
            if regressed { "REGRESSED".to_owned() } else { "ok".to_owned() },
        ]);
    }
    for row in &rows {
        table.row(row.to_vec());
    }
    // New metrics must be gated too: a measurement without a baseline
    // entry means the baseline was not refreshed alongside the change.
    for (key, _) in &measured {
        if !baseline.iter().any(|(k, _)| k == key) {
            eprintln!("error: measured metric {key} has no baseline entry — refresh the baseline");
            failed = true;
        }
    }
    print_table(&table);
    write_step_summary(&rows, max_regression, failed);
    if failed {
        eprintln!(
            "bench gate FAILED: a metric regressed more than {:.0}% against {BASELINE_PATH}",
            max_regression * 100.0
        );
        eprintln!("(intentional change? refresh the baseline — see the header of this binary)");
        std::process::exit(1);
    }
    println!("bench gate passed (threshold {:.0}%)", max_regression * 100.0);
}
