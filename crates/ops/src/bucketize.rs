//! Bucketize — feature generation (Algorithm 1 of the paper).
//!
//! Transforms a dense feature into a sparse categorical feature by binary-
//! searching each value against a sorted boundary array: the output id is the
//! index of the bucket the value falls into. Matches TorchArrow's
//! `bucketize`, where `id = #{ boundaries[j] <= value }` over `m` boundaries,
//! yielding ids in `[0, m]`.

use std::fmt;

/// Error constructing a [`Bucketizer`].
#[derive(Debug, Clone, PartialEq)]
pub enum BucketizeError {
    /// The boundary list was empty.
    Empty,
    /// Boundaries were not strictly increasing at the reported index.
    NotIncreasing {
        /// Index `i` such that `boundaries[i] >= boundaries[i + 1]`.
        index: usize,
    },
    /// A boundary was NaN.
    NanBoundary {
        /// Index of the NaN entry.
        index: usize,
    },
}

impl fmt::Display for BucketizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BucketizeError::Empty => write!(f, "bucket boundary list is empty"),
            BucketizeError::NotIncreasing { index } => {
                write!(f, "bucket boundaries not strictly increasing at index {index}")
            }
            BucketizeError::NanBoundary { index } => {
                write!(f, "bucket boundary at index {index} is NaN")
            }
        }
    }
}

impl std::error::Error for BucketizeError {}

/// A validated, sorted bucket boundary array plus the search kernel.
///
/// # Examples
///
/// ```
/// use presto_ops::Bucketizer;
///
/// let b = Bucketizer::new(vec![0.0, 10.0, 100.0])?;
/// assert_eq!(b.bucket_id(-5.0), 0);  // below all boundaries
/// assert_eq!(b.bucket_id(0.0), 1);   // boundaries are inclusive lower edges
/// assert_eq!(b.bucket_id(50.0), 2);
/// assert_eq!(b.bucket_id(1e9), 3);   // above all boundaries
/// # Ok::<(), presto_ops::BucketizeError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Bucketizer {
    boundaries: Vec<f32>,
}

impl Bucketizer {
    /// Validates and wraps a strictly increasing boundary array.
    ///
    /// # Errors
    ///
    /// Returns [`BucketizeError`] on empty, NaN-containing or non-increasing
    /// input.
    pub fn new(boundaries: Vec<f32>) -> Result<Self, BucketizeError> {
        if boundaries.is_empty() {
            return Err(BucketizeError::Empty);
        }
        if let Some(index) = boundaries.iter().position(|b| b.is_nan()) {
            return Err(BucketizeError::NanBoundary { index });
        }
        if let Some(index) = boundaries.windows(2).position(|w| w[0] >= w[1]) {
            return Err(BucketizeError::NotIncreasing { index });
        }
        Ok(Bucketizer { boundaries })
    }

    /// `m` boundaries logarithmically spaced over `[1, max_value]`, the shape
    /// used for count-like dense features. Deduplicated to stay strictly
    /// increasing, so fewer than `m` boundaries may result for tiny ranges.
    ///
    /// # Errors
    ///
    /// Returns [`BucketizeError::Empty`] when `m == 0` or `max_value < 1.0`.
    pub fn log_spaced(m: usize, max_value: f32) -> Result<Self, BucketizeError> {
        if m == 0 || max_value < 1.0 {
            return Err(BucketizeError::Empty);
        }
        let log_max = max_value.ln();
        let mut strict: Vec<f32> = Vec::with_capacity(m);
        for i in 0..m {
            let b = (log_max * i as f32 / m as f32).exp() - 1.0;
            if strict.last().is_none_or(|&last| b > last) {
                strict.push(b);
            }
        }
        Bucketizer::new(strict)
    }

    /// Quantile boundaries estimated from a data sample: `m` cut points that
    /// split the sample into equal-mass buckets (duplicates collapsed).
    ///
    /// # Errors
    ///
    /// Returns [`BucketizeError::Empty`] when `m == 0` or the sample has no
    /// finite values.
    pub fn from_quantiles(sample: &[f32], m: usize) -> Result<Self, BucketizeError> {
        if m == 0 {
            return Err(BucketizeError::Empty);
        }
        let mut sorted: Vec<f32> = sample.iter().copied().filter(|v| v.is_finite()).collect();
        if sorted.is_empty() {
            return Err(BucketizeError::Empty);
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        let mut boundaries = Vec::with_capacity(m);
        for i in 1..=m {
            // Cut point i sits at rank i·n/(m+1), so the m cuts split the
            // sample into m+1 equal-mass buckets. (A previous formula used
            // i·(n−1)/(m+1), which never reaches the top of the sample and
            // starved the last bucket; see `quantiles_reach_sample_top`.)
            let idx = (i * sorted.len()) / (m + 1);
            let candidate = sorted[idx.min(sorted.len() - 1)];
            if boundaries.last().is_none_or(|&last| candidate > last) {
                boundaries.push(candidate);
            }
        }
        if boundaries.is_empty() {
            boundaries.push(sorted[0]);
        }
        Bucketizer::new(boundaries)
    }

    /// The boundary array.
    #[must_use]
    pub fn boundaries(&self) -> &[f32] {
        &self.boundaries
    }

    /// Number of boundaries `m`; output ids span `[0, m]`.
    #[must_use]
    pub fn num_boundaries(&self) -> usize {
        self.boundaries.len()
    }

    /// `SearchBucketID` from Algorithm 1: index of the bucket `value` falls
    /// into, via binary search. NaN maps to bucket 0.
    #[must_use]
    pub fn bucket_id(&self, value: f32) -> i64 {
        // partition_point returns the count of boundaries <= value.
        self.boundaries.partition_point(|&b| b <= value) as i64
    }

    /// Branchless id computation for small boundary arrays: counts
    /// `boundaries[j] <= value` with a data-independent loop the compiler
    /// can vectorize. Equivalent to [`Bucketizer::bucket_id`] (NaN compares
    /// false everywhere, so NaN still lands in bucket 0).
    #[inline]
    fn bucket_id_small(&self, value: f32) -> i64 {
        self.boundaries.iter().map(|&b| i64::from(b <= value)).sum()
    }

    /// Boundary count at or below which the branchless linear scan beats
    /// binary search (no branch mispredicts, one cache line of boundaries).
    /// Above the threshold, speculative binary search (`partition_point`)
    /// wins: a fully branchless cmov search was measured ~5× slower at
    /// `m = 1024` because it serializes the load chain and forfeits
    /// memory-level parallelism.
    const SMALL_M: usize = 16;

    /// Bucketizes a full dense column (the Algorithm 1 loop).
    #[must_use]
    pub fn apply(&self, values: &[f32]) -> Vec<i64> {
        let mut out = Vec::new();
        self.apply_into(values, &mut out);
        out
    }

    /// Bucketizes into a caller-provided buffer, reusing its capacity.
    ///
    /// Dispatches to the branchless linear scan for small `m` and to binary
    /// search otherwise; both produce identical ids.
    pub fn apply_into(&self, values: &[f32], out: &mut Vec<i64>) {
        out.clear();
        out.reserve(values.len());
        if self.boundaries.len() <= Self::SMALL_M {
            out.extend(values.iter().map(|&v| self.bucket_id_small(v)));
        } else {
            out.extend(values.iter().map(|&v| self.bucket_id(v)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_match_linear_scan() {
        let b = Bucketizer::new(vec![1.0, 2.5, 7.0, 9.0]).unwrap();
        for v in [-1.0f32, 0.0, 1.0, 2.0, 2.5, 3.0, 8.9, 9.0, 100.0] {
            let linear = b.boundaries().iter().filter(|&&x| x <= v).count() as i64;
            assert_eq!(b.bucket_id(v), linear, "value {v}");
        }
    }

    #[test]
    fn ids_are_in_range_and_monotone() {
        let b = Bucketizer::log_spaced(1024, 1.0e6).unwrap();
        let mut prev = -1i64;
        for i in 0..2000 {
            let v = i as f32 * 500.0;
            let id = b.bucket_id(v);
            assert!((0..=b.num_boundaries() as i64).contains(&id));
            assert!(id >= prev, "bucket ids must be monotone in the value");
            prev = id;
        }
    }

    #[test]
    fn empty_boundaries_rejected() {
        assert_eq!(Bucketizer::new(vec![]), Err(BucketizeError::Empty));
    }

    #[test]
    fn unsorted_boundaries_rejected() {
        assert_eq!(
            Bucketizer::new(vec![1.0, 1.0]),
            Err(BucketizeError::NotIncreasing { index: 0 })
        );
        assert_eq!(
            Bucketizer::new(vec![1.0, 3.0, 2.0]),
            Err(BucketizeError::NotIncreasing { index: 1 })
        );
    }

    #[test]
    fn nan_boundary_rejected() {
        assert_eq!(
            Bucketizer::new(vec![1.0, f32::NAN]),
            Err(BucketizeError::NanBoundary { index: 1 })
        );
    }

    #[test]
    fn nan_value_goes_to_bucket_zero() {
        let b = Bucketizer::new(vec![0.0, 1.0]).unwrap();
        assert_eq!(b.bucket_id(f32::NAN), 0);
    }

    #[test]
    fn log_spaced_has_requested_scale() {
        let b = Bucketizer::log_spaced(256, 1.0e6).unwrap();
        assert!(b.num_boundaries() > 200, "got {}", b.num_boundaries());
        assert!(b.num_boundaries() <= 256);
        // First boundary at exp(0)-1 = 0.
        assert_eq!(b.boundaries()[0], 0.0);
    }

    #[test]
    fn quantile_boundaries_balance_buckets() {
        let sample: Vec<f32> = (0..10_000).map(|i| (i % 1000) as f32).collect();
        let b = Bucketizer::from_quantiles(&sample, 9).unwrap();
        let ids = b.apply(&sample);
        let mut counts = vec![0usize; b.num_boundaries() + 1];
        for id in ids {
            counts[id as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().filter(|&&c| c > 0).min().unwrap();
        assert!(max < min * 4, "bucket skew: max {max} min {min}");
    }

    #[test]
    fn quantiles_reach_sample_top() {
        // Regression: with m cuts over n = m + 1 distinct values, every
        // value must become its own bucket — including the top one. The old
        // index formula ((i * (n - 1)) / (m + 1)) stopped one short and
        // merged the two largest values into one bucket.
        let sample: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let b = Bucketizer::from_quantiles(&sample, 9).unwrap();
        assert_eq!(b.boundaries(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]);
        // The top value is separated from its neighbor.
        assert_ne!(b.bucket_id(9.0), b.bucket_id(8.0));
    }

    #[test]
    fn quantile_last_bucket_is_not_starved() {
        // With a uniform sample, the mass above the last cut must be about
        // one bucket's worth, not two.
        let sample: Vec<f32> = (0..1000).map(|i| i as f32).collect();
        let m = 4;
        let b = Bucketizer::from_quantiles(&sample, m).unwrap();
        let ids = b.apply(&sample);
        let top = ids.iter().filter(|&&id| id == m as i64).count();
        let expected = sample.len() / (m + 1);
        assert!(
            top <= expected + expected / 2,
            "last bucket got {top} of {} samples, expected ~{expected}",
            sample.len()
        );
    }

    #[test]
    fn large_m_apply_matches_bucket_id() {
        // Large-m apply path vs the scalar reference, across
        // non-power-of-two sizes and boundary-exact values.
        for m in [17usize, 100, 1023, 1024, 1025] {
            let boundaries: Vec<f32> = (0..m).map(|i| i as f32 * 3.5).collect();
            let b = Bucketizer::new(boundaries).unwrap();
            let mut probes: Vec<f32> = (0..2 * m).map(|i| i as f32 * 1.75 - 10.0).collect();
            probes.extend([f32::NAN, f32::INFINITY, f32::NEG_INFINITY, -1e30, 1e30]);
            let expected: Vec<i64> = probes.iter().map(|&v| b.bucket_id(v)).collect();
            assert_eq!(b.apply(&probes), expected, "m={m}");
        }
    }

    #[test]
    fn small_and_large_m_paths_agree() {
        // Straddle the SMALL_M dispatch threshold with shared inputs.
        let values: Vec<f32> = (-50..50).map(|i| i as f32 * 7.31).collect();
        for m in [1usize, 2, 15, 16, 17, 64] {
            let boundaries: Vec<f32> = (0..m).map(|i| i as f32 * 11.0 - 100.0).collect();
            let b = Bucketizer::new(boundaries).unwrap();
            for &v in &values {
                let linear = b.boundaries().iter().filter(|&&x| x <= v).count() as i64;
                assert_eq!(b.bucket_id(v), linear, "m={m} v={v}");
            }
            let applied = b.apply(&values);
            let expected: Vec<i64> = values.iter().map(|&v| b.bucket_id(v)).collect();
            assert_eq!(applied, expected, "m={m}");
        }
    }

    #[test]
    fn small_path_handles_nan_and_infinities() {
        let b = Bucketizer::new(vec![0.0, 1.0]).unwrap();
        let out = b.apply(&[f32::NAN, f32::NEG_INFINITY, f32::INFINITY]);
        assert_eq!(out, vec![0, 0, 2]);
    }

    #[test]
    fn apply_into_reuses_buffer() {
        let b = Bucketizer::new(vec![5.0]).unwrap();
        let mut out = Vec::with_capacity(4);
        b.apply_into(&[1.0, 9.0], &mut out);
        assert_eq!(out, vec![0, 1]);
        b.apply_into(&[6.0], &mut out);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn infinities_clamp_to_extremes() {
        let b = Bucketizer::new(vec![0.0, 1.0]).unwrap();
        assert_eq!(b.bucket_id(f32::NEG_INFINITY), 0);
        assert_eq!(b.bucket_id(f32::INFINITY), 2);
    }
}
