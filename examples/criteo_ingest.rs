//! Criteo TSV ingestion: parse click-logs in the real public-dataset
//! format, shard them into columnar partitions, and preprocess them — the
//! RM1 path with genuine file-format handling.
//!
//! Run with: `cargo run --example criteo_ingest [path/to/criteo.tsv]`
//! (without an argument, a format-faithful synthetic sample is used).

use presto::datagen::criteo;
use presto::datagen::{write_partition, RmConfig};
use presto::ops::{preprocess_batch, PreprocessPlan};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let text = match std::env::args().nth(1) {
        Some(path) => {
            println!("reading {path}");
            std::fs::read_to_string(path)?
        }
        None => {
            println!("no input file given; synthesizing 2,000 Criteo-format rows");
            criteo::synthesize_tsv(2_000, 2024)
        }
    };

    // Parse TSV -> tabular row batch (label + 13 dense + 26 sparse).
    let batch = criteo::parse_tsv(&text)?;
    println!("parsed {} rows into {} columns", batch.rows(), batch.schema().len());

    // Store as a columnar partition (what the storage system would hold).
    let blob = write_partition(&batch)?;
    println!(
        "columnar partition: {:.1} KiB ({:.2} bytes/row)",
        blob.as_bytes().len() as f64 / 1024.0,
        blob.as_bytes().len() as f64 / batch.rows() as f64
    );

    // Preprocess with the RM1 plan.
    let mut config = RmConfig::rm1();
    config.batch_size = batch.rows();
    let plan = PreprocessPlan::from_config(&config, 1)?;
    let (mini_batch, timings) = preprocess_batch(&plan, &batch)?;
    println!(
        "preprocessed into {} samples x ({} dense + {} jagged features)",
        mini_batch.rows(),
        mini_batch.dense().cols(),
        mini_batch.sparse().len()
    );
    println!(
        "transform time on this host: bucketize {:?}, sigridhash {:?}, log {:?}",
        timings.bucketize(),
        timings.sigridhash(),
        timings.log()
    );

    // Show the normalization effect on one dense feature.
    let raw_col = batch.column("dense_0").and_then(|a| a.as_float32()).expect("dense_0");
    let max_raw = raw_col.iter().copied().fold(0.0f32, f32::max);
    let max_norm =
        (0..mini_batch.rows()).map(|r| mini_batch.dense().row(r)[0]).fold(0.0f32, f32::max);
    println!("dense_0 range compressed by Log: max {max_raw:.0} -> {max_norm:.2}");
    Ok(())
}
