//! Fixed-width bit packing for unsigned integers.
//!
//! Packs each value into exactly `bit_width` bits, LSB-first within bytes —
//! the same layout Parquet's RLE/bit-packing hybrid uses. A `bit_width` of 0
//! encodes a run of zeros in zero bytes.

use crate::error::{ColumnarError, Result};

/// Smallest bit width able to represent `max_value`.
///
/// Zero maps to width 0 (all values are zero and occupy no bits).
#[must_use]
pub fn width_for(max_value: u64) -> u32 {
    64 - max_value.leading_zeros()
}

/// Packs `values` at `bit_width` bits each, appending to `out`.
///
/// Full 64-value groups take the word-based kernel ([`pack_group`]), the
/// encode-side mirror of [`unpack_group`]: every full group spans exactly
/// `8 × bit_width` bytes, so it assembles whole `u64` words with two
/// branch-free shifts per value instead of feeding a bit accumulator one
/// value at a time. Only the trailing partial group falls back to the
/// accumulator — and since full groups always end word-aligned, the byte
/// stream is identical to the historical value-at-a-time encoder.
///
/// # Errors
///
/// Returns [`ColumnarError::ValueOutOfRange`] if any value needs more than
/// `bit_width` bits, or if `bit_width > 64`.
pub fn pack(values: &[u64], bit_width: u32, out: &mut Vec<u8>) -> Result<()> {
    if bit_width > 64 {
        return Err(ColumnarError::ValueOutOfRange {
            detail: format!("bit width {bit_width} exceeds 64"),
        });
    }
    if bit_width == 0 {
        if let Some(bad) = values.iter().find(|&&v| v != 0) {
            return Err(ColumnarError::ValueOutOfRange {
                detail: format!("value {bad} does not fit in 0 bits"),
            });
        }
        return Ok(());
    }
    let mask = if bit_width == 64 { u64::MAX } else { (1u64 << bit_width) - 1 };
    let mut chunks = values.chunks_exact(GROUP);
    for chunk in &mut chunks {
        if let Some(&bad) = chunk.iter().find(|&&v| v & !mask != 0) {
            return Err(ColumnarError::ValueOutOfRange {
                detail: format!("value {bad} does not fit in {bit_width} bits"),
            });
        }
        let group: &[u64; GROUP] = chunk.try_into().expect("exact chunk of GROUP");
        pack_group(group, bit_width, out);
    }
    pack_tail(chunks.remainder(), bit_width, mask, out)
}

/// Packs one full group of [`GROUP`] values at `bit_width` bits
/// (`1 <= bit_width <= 64`), appending exactly `8 × bit_width` bytes.
///
/// The mirror of [`unpack_group`]: each value lands in at most two adjacent
/// `u64` words via branch-free shifts — the `(v >> 1) >> (63 - shift)` form
/// keeps the high-word contribution defined (and zero) when `shift == 0`.
/// Values must already fit in `bit_width` bits (callers validate; extra
/// bits would corrupt neighboring values).
pub fn pack_group(values: &[u64; GROUP], bit_width: u32, out: &mut Vec<u8>) {
    debug_assert!((1..=64).contains(&bit_width));
    let width = bit_width as usize;
    // One padding word so the `idx + 1` store below never branches; a full
    // group ends exactly at a word boundary, so it stays zero.
    let mut words = [0u64; 65];
    let mut bit = 0usize;
    for &v in values {
        let idx = bit >> 6;
        let shift = (bit & 63) as u32;
        words[idx] |= v << shift;
        words[idx + 1] |= (v >> 1) >> (63 - shift);
        bit += width;
    }
    debug_assert_eq!(words[width], 0, "masked values cannot spill past the group");
    for w in &words[..width] {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

/// Value-at-a-time accumulator for the trailing partial group (fewer than
/// [`GROUP`] values). `mask` must match `bit_width`.
fn pack_tail(values: &[u64], bit_width: u32, mask: u64, out: &mut Vec<u8>) -> Result<()> {
    let mut acc: u64 = 0;
    let mut acc_bits: u32 = 0;
    for &v in values {
        if v & !mask != 0 {
            return Err(ColumnarError::ValueOutOfRange {
                detail: format!("value {v} does not fit in {bit_width} bits"),
            });
        }
        let mut remaining = bit_width;
        let mut chunk = v;
        while remaining > 0 {
            let take = remaining.min(64 - acc_bits);
            let take_mask = if take == 64 { u64::MAX } else { (1u64 << take) - 1 };
            // take == 64 implies acc_bits == 0, so the shift below is by 0.
            acc |= (chunk & take_mask) << acc_bits;
            acc_bits += take;
            chunk = if take == 64 { 0 } else { chunk >> take };
            remaining -= take;
            if acc_bits == 64 {
                out.extend_from_slice(&acc.to_le_bytes());
                acc = 0;
                acc_bits = 0;
            }
        }
    }
    if acc_bits > 0 {
        let bytes = (acc_bits as usize).div_ceil(8);
        out.extend_from_slice(&acc.to_le_bytes()[..bytes]);
    }
    Ok(())
}

/// Unpacks `count` values of `bit_width` bits each from `buf` starting at
/// `*pos`, advancing `*pos` past the consumed bytes.
///
/// # Errors
///
/// Returns [`ColumnarError::UnexpectedEof`] when the buffer is too short and
/// [`ColumnarError::ValueOutOfRange`] for widths above 64.
pub fn unpack(buf: &[u8], pos: &mut usize, count: usize, bit_width: u32) -> Result<Vec<u64>> {
    let mut values = Vec::new();
    unpack_into(buf, pos, count, bit_width, &mut values)?;
    Ok(values)
}

/// Values per batched-unpack group: 64 values of `w` bits occupy exactly
/// `8 * w` bytes, so every full group is byte-aligned and decodes with plain
/// `u64` word loads — no per-value byte assembly.
pub const GROUP: usize = 64;

/// Like [`unpack`], appending to a caller-owned buffer instead of
/// allocating.
///
/// Full 64-value groups take the word-based kernel ([`unpack_group`]); only
/// a trailing partial group falls back to per-value bit reads. Preallocation
/// is clamped to what the remaining input could possibly hold, so a corrupt
/// `count` cannot force an oversized reservation.
///
/// # Errors
///
/// Same as [`unpack`].
pub fn unpack_into(
    buf: &[u8],
    pos: &mut usize,
    count: usize,
    bit_width: u32,
    out: &mut Vec<u64>,
) -> Result<()> {
    if bit_width > 64 {
        return Err(ColumnarError::ValueOutOfRange {
            detail: format!("bit width {bit_width} exceeds 64"),
        });
    }
    if bit_width == 0 {
        // Zero-width runs carry no payload bytes; the count is bounded by
        // the caller (run headers / block counts are validated against the
        // declared element count before this is reached).
        out.extend(std::iter::repeat_n(0, count));
        return Ok(());
    }
    let total_bits = count as u128 * u128::from(bit_width);
    let end = usize::try_from(total_bits.div_ceil(8))
        .ok()
        .and_then(|need| pos.checked_add(need))
        .filter(|&e| e <= buf.len())
        .ok_or(ColumnarError::UnexpectedEof { context: "bitpacked run" })?;
    let data = &buf[*pos..end];
    *pos = end;
    out.reserve(count);

    let width = bit_width as usize;
    let full_groups = count / GROUP;
    let mut scratch = [0u64; GROUP];
    for g in 0..full_groups {
        // Each full group is exactly `8 * width` bytes.
        unpack_group(&data[g * 8 * width..(g + 1) * 8 * width], bit_width, &mut scratch);
        out.extend_from_slice(&scratch);
    }
    let done = full_groups * GROUP;
    let mut bit_pos = (done * width) as u64;
    for _ in done..count {
        out.push(read_bits(data, bit_pos, bit_width));
        bit_pos += u64::from(bit_width);
    }
    Ok(())
}

/// Unpacks one full group of [`GROUP`] values from `bytes`
/// (`bytes.len() == 8 * bit_width`, `1 <= bit_width <= 64`) into `out`.
///
/// The packed bits are copied into zero-padded `u64` words once, then each
/// value is assembled from at most two adjacent words with branch-free
/// shifts — the `(hi << 1) << (63 - shift)` form keeps the high-word
/// contribution defined (and zero) when `shift == 0`.
pub fn unpack_group(bytes: &[u8], bit_width: u32, out: &mut [u64; GROUP]) {
    debug_assert_eq!(bytes.len(), 8 * bit_width as usize);
    debug_assert!((1..=64).contains(&bit_width));
    let width = bit_width as usize;
    // One padding word so the `idx + 1` load below never branches.
    let mut words = [0u64; 65];
    for (w, chunk) in words.iter_mut().zip(bytes.chunks_exact(8)) {
        *w = u64::from_le_bytes(chunk.try_into().expect("chunk of 8"));
    }
    let mask = if bit_width == 64 { u64::MAX } else { (1u64 << bit_width) - 1 };
    let mut bit = 0usize;
    for o in out.iter_mut() {
        let idx = bit >> 6;
        let shift = (bit & 63) as u32;
        let lo = words[idx] >> shift;
        let hi = (words[idx + 1] << 1) << (63 - shift);
        *o = (lo | hi) & mask;
        bit += width;
    }
}

/// Reads `width` bits starting at absolute bit offset `bit_pos` (LSB-first).
///
/// Scalar fallback for partial groups; `data` must hold the addressed bits
/// and `width` must be `1..=64` (callers validate both).
pub(crate) fn read_bits(data: &[u8], bit_pos: u64, width: u32) -> u64 {
    let mut value: u64 = 0;
    let mut got: u32 = 0;
    let mut byte_idx = (bit_pos / 8) as usize;
    let mut bit_in_byte = (bit_pos % 8) as u32;
    while got < width {
        let avail = 8 - bit_in_byte;
        let take = avail.min(width - got);
        let chunk = (u64::from(data[byte_idx]) >> bit_in_byte) & ((1u64 << take) - 1);
        value |= chunk << got;
        got += take;
        bit_in_byte += take;
        if bit_in_byte == 8 {
            bit_in_byte = 0;
            byte_idx += 1;
        }
    }
    value
}

/// Number of bytes `count` values occupy at `bit_width` bits.
#[must_use]
pub fn packed_len(count: usize, bit_width: u32) -> usize {
    (count as u64 * u64::from(bit_width)).div_ceil(8) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[u64], width: u32) {
        let mut buf = Vec::new();
        pack(values, width, &mut buf).unwrap();
        assert_eq!(buf.len(), packed_len(values.len(), width));
        let mut pos = 0;
        let back = unpack(&buf, &mut pos, values.len(), width).unwrap();
        assert_eq!(back, values);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn width_for_boundaries() {
        assert_eq!(width_for(0), 0);
        assert_eq!(width_for(1), 1);
        assert_eq!(width_for(2), 2);
        assert_eq!(width_for(255), 8);
        assert_eq!(width_for(256), 9);
        assert_eq!(width_for(u64::MAX), 64);
    }

    #[test]
    fn roundtrip_small_widths() {
        roundtrip(&[0, 1, 1, 0, 1, 0, 0, 1, 1], 1);
        roundtrip(&[3, 0, 2, 1, 3, 3], 2);
        roundtrip(&[7, 6, 5, 4, 3, 2, 1, 0], 3);
    }

    #[test]
    fn roundtrip_byte_spanning_widths() {
        roundtrip(&[100, 200, 255, 0, 17], 8);
        roundtrip(&[1000, 0, 511, 512], 10);
        roundtrip(&[123_456, 1, 0, 999_999], 20);
    }

    #[test]
    fn roundtrip_full_width() {
        roundtrip(&[u64::MAX, 0, 42, u64::MAX - 1], 64);
    }

    #[test]
    fn zero_width_encodes_zeros_for_free() {
        let mut buf = Vec::new();
        pack(&[0, 0, 0], 0, &mut buf).unwrap();
        assert!(buf.is_empty());
        let mut pos = 0;
        assert_eq!(unpack(&buf, &mut pos, 3, 0).unwrap(), vec![0, 0, 0]);
    }

    #[test]
    fn zero_width_rejects_nonzero() {
        let mut buf = Vec::new();
        assert!(pack(&[1], 0, &mut buf).is_err());
    }

    #[test]
    fn overflow_value_rejected() {
        let mut buf = Vec::new();
        assert!(pack(&[8], 3, &mut buf).is_err());
    }

    #[test]
    fn short_buffer_detected() {
        let mut buf = Vec::new();
        pack(&[5, 6, 7], 3, &mut buf).unwrap();
        buf.pop();
        let mut pos = 0;
        assert!(matches!(unpack(&buf, &mut pos, 3, 3), Err(ColumnarError::UnexpectedEof { .. })));
    }

    #[test]
    fn width_above_64_rejected() {
        let mut buf = Vec::new();
        assert!(pack(&[1], 65, &mut buf).is_err());
        let mut pos = 0;
        assert!(unpack(&[], &mut pos, 0, 65).is_err());
    }

    #[test]
    fn empty_input_is_fine() {
        roundtrip(&[], 7);
    }

    #[test]
    fn group_kernel_matches_scalar_reads_at_every_width() {
        // 3 full groups + a partial tail per width: the word kernel and the
        // per-value fallback must agree bit for bit.
        for width in 1..=64u32 {
            let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
            let mut x = 0x0123_4567_89ab_cdefu64 ^ u64::from(width);
            let values: Vec<u64> = (0..3 * GROUP + 17)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x & mask
                })
                .collect();
            roundtrip(&values, width);
        }
    }

    #[test]
    fn unpack_into_appends_after_existing_values() {
        let mut buf = Vec::new();
        pack(&[5, 6, 7], 3, &mut buf).unwrap();
        let mut out = vec![99u64];
        let mut pos = 0;
        unpack_into(&buf, &mut pos, 3, 3, &mut out).unwrap();
        assert_eq!(out, vec![99, 5, 6, 7]);
    }

    /// The historical value-at-a-time encoder, kept as the byte-exactness
    /// reference for the word-based group packer.
    fn pack_reference(values: &[u64], bit_width: u32) -> Vec<u8> {
        let mask = if bit_width == 64 { u64::MAX } else { (1u64 << bit_width) - 1 };
        let mut out = Vec::new();
        pack_tail(values, bit_width, mask, &mut out).unwrap();
        out
    }

    #[test]
    fn group_packer_is_byte_identical_to_scalar_accumulator() {
        // The format must not move under the encode-side kernel: 2 full
        // groups + a tail, every width, byte-for-byte equal to the
        // historical accumulator.
        for width in 1..=64u32 {
            let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
            let mut x = 0xdead_beef_cafe_f00du64 ^ u64::from(width).rotate_left(17);
            let values: Vec<u64> = (0..2 * GROUP + 23)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x & mask
                })
                .collect();
            let mut grouped = Vec::new();
            pack(&values, width, &mut grouped).unwrap();
            assert_eq!(grouped, pack_reference(&values, width), "width {width}");
        }
    }

    #[test]
    fn group_packer_rejects_overflow_inside_a_full_group() {
        let mut values = vec![0u64; GROUP];
        values[GROUP / 2] = 8; // needs 4 bits
        let mut buf = Vec::new();
        let err = pack(&values, 3, &mut buf).unwrap_err();
        assert!(matches!(err, ColumnarError::ValueOutOfRange { .. }));
    }

    #[test]
    fn group_sized_runs_are_byte_aligned() {
        for width in [1u32, 7, 20, 33, 64] {
            assert_eq!(packed_len(GROUP, width), 8 * width as usize);
        }
    }
}
