//! Storage-device read model.
//!
//! Besides the bandwidth view ([`SsdModel::read_time`]), the model exposes
//! the *queueing* view: a device services at most [`SsdModel::queue_depth`]
//! positioned reads concurrently (the NVMe queue depth), so a backlogged
//! device completes `N` reads of service time `L` in `ceil(N / depth) × L`
//! ([`SsdModel::queued_service_time`]). This is, by construction, the same
//! expression the executable device emulation in
//! `presto_columnar::DeviceModel::serialized_time` implements — the
//! streaming contention ablation and this model must agree.

use crate::calib;
use crate::units::{BytesPerSec, Secs};

/// An NVMe storage device (plain SSD or the SSD half of a SmartSSD).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsdModel {
    read_bw: BytesPerSec,
    p2p_bw: BytesPerSec,
    queue_depth: usize,
}

impl SsdModel {
    /// The PoC's NVMe device.
    #[must_use]
    pub fn nvme() -> Self {
        SsdModel {
            read_bw: BytesPerSec::new(calib::ssd::READ_BYTES_PER_SEC),
            p2p_bw: BytesPerSec::new(calib::ssd::P2P_BYTES_PER_SEC),
            queue_depth: calib::ssd::QUEUE_DEPTH,
        }
    }

    /// A custom device (with the PoC queue depth; see
    /// [`SsdModel::with_queue_depth`]).
    #[must_use]
    pub fn new(read_bw: BytesPerSec, p2p_bw: BytesPerSec) -> Self {
        SsdModel { read_bw, p2p_bw, queue_depth: calib::ssd::QUEUE_DEPTH }
    }

    /// Overrides the device queue depth (clamped to ≥ 1).
    #[must_use]
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Reads the device services concurrently.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.queue_depth
    }

    /// Makespan of `reads` positioned reads of `service` each on a
    /// *backlogged* device: requests fill the queue's `depth` slots in
    /// waves, so the makespan is `ceil(reads / depth) × service`.
    ///
    /// Mirrors `presto_columnar::DeviceModel::serialized_time` exactly; the
    /// streaming ablation checks the executable emulation against this
    /// prediction.
    #[must_use]
    pub fn queued_service_time(&self, reads: u64, service: Secs) -> Secs {
        let waves = reads.div_ceil(self.queue_depth as u64);
        Secs::new(service.seconds() * waves as f64)
    }

    /// [`SsdModel::queued_service_time`] with the per-read service time
    /// derived from the host-path bandwidth for reads of `bytes_per_read`.
    #[must_use]
    pub fn queued_read_time(&self, reads: u64, bytes_per_read: u64) -> Secs {
        self.queued_service_time(reads, self.read_time(bytes_per_read))
    }

    /// Host-path sequential read time for `bytes`.
    #[must_use]
    pub fn read_time(&self, bytes: u64) -> Secs {
        self.read_bw.time_for(bytes)
    }

    /// SSD→FPGA peer-to-peer read time for `bytes` (SmartSSD only).
    #[must_use]
    pub fn p2p_time(&self, bytes: u64) -> Secs {
        self.p2p_bw.time_for(bytes)
    }

    /// Host-path bandwidth.
    #[must_use]
    pub fn read_bandwidth(&self) -> BytesPerSec {
        self.read_bw
    }

    /// P2P bandwidth.
    #[must_use]
    pub fn p2p_bandwidth(&self) -> BytesPerSec {
        self.p2p_bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_is_slower_than_host_path() {
        let ssd = SsdModel::nvme();
        assert!(ssd.p2p_time(1 << 20) > ssd.read_time(1 << 20));
    }

    #[test]
    fn times_scale_linearly() {
        let ssd = SsdModel::new(BytesPerSec::gb(2.0), BytesPerSec::gb(1.0));
        assert!((ssd.read_time(2_000_000_000).seconds() - 1.0).abs() < 1e-9);
        assert!((ssd.p2p_time(2_000_000_000).seconds() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn queued_service_time_serializes_by_waves() {
        let service = Secs::from_millis(2.0);
        let qd1 = SsdModel::nvme().with_queue_depth(1);
        assert!((qd1.queued_service_time(5, service).seconds() - 0.010).abs() < 1e-12);
        let qd4 = SsdModel::nvme().with_queue_depth(4);
        assert!((qd4.queued_service_time(4, service).seconds() - 0.002).abs() < 1e-12);
        assert!((qd4.queued_service_time(5, service).seconds() - 0.004).abs() < 1e-12);
        assert!((qd4.queued_service_time(0, service).seconds()).abs() < 1e-12);
    }

    #[test]
    fn queue_depth_clamps_and_defaults() {
        assert_eq!(SsdModel::nvme().queue_depth(), calib::ssd::QUEUE_DEPTH);
        assert_eq!(SsdModel::nvme().with_queue_depth(0).queue_depth(), 1);
    }

    #[test]
    fn queued_read_time_uses_host_bandwidth() {
        let ssd = SsdModel::new(BytesPerSec::gb(1.0), BytesPerSec::gb(1.0)).with_queue_depth(2);
        // 8 reads of 1 MB at 1 GB/s through 2 slots: 4 waves of 1 ms.
        let t = ssd.queued_read_time(8, 1_000_000);
        assert!((t.seconds() - 0.004).abs() < 1e-9, "{}", t.seconds());
    }
}
