//! Deterministic random distributions for dataset synthesis.
//!
//! Everything is seeded: the same `(config, seed, partition)` triple always
//! produces byte-identical data, which keeps tests and benches reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic generator handle.
#[derive(Debug)]
pub struct DataRng {
    seed: u64,
    rng: StdRng,
}

impl DataRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        DataRng { seed, rng: StdRng::seed_from_u64(seed) }
    }

    /// Derives an independent stream for a sub-entity (feature, partition).
    ///
    /// The parent seed and the label are mixed with SplitMix64 so adjacent
    /// labels do not correlate and different parents stay independent.
    #[must_use]
    pub fn derive(&self, label: u64) -> Self {
        let mut z =
            self.seed.rotate_left(17).wrapping_add(label).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        DataRng::seed_from_u64(z)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics when `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.rng.gen_range(0..bound)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Non-negative dense feature value with a heavy tail, the shape of
    /// Criteo's count-like dense features: mostly small, occasionally large.
    pub fn dense_value(&mut self) -> f32 {
        // Exponential of an exponential sample, capped to keep f32 finite.
        let u: f64 = self.unit();
        let v = (-(1.0 - u).ln()) * 8.0; // Exp(1/8)
        let heavy = v * v; // square for tail weight
        heavy.min(1.0e6) as f32
    }

    /// Categorical id in `[0, vocab)` with a Zipf-like skew: a small hot set
    /// receives most of the mass, matching real interaction logs.
    ///
    /// # Panics
    ///
    /// Panics when `vocab == 0`.
    pub fn sparse_id(&mut self, vocab: u64) -> i64 {
        assert!(vocab > 0, "vocabulary must be non-empty");
        // Inverse-power sampling: rank ~ u^alpha scaled to vocab gives a
        // smooth Zipf-ish curve without a harmonic-number table.
        const ALPHA: f64 = 3.0;
        let u = self.unit();
        let rank = (u.powf(ALPHA) * vocab as f64) as u64;
        rank.min(vocab - 1) as i64
    }

    /// List length with mean `avg_len`: fixed when `fixed` is set, otherwise
    /// a shifted geometric-ish draw in `[0, 4 * avg_len]`.
    pub fn sparse_len(&mut self, avg_len: usize, fixed: bool) -> usize {
        if fixed || avg_len == 0 {
            return avg_len;
        }
        // Sample Exp(mean = avg_len) and round; clamp the tail.
        let u = self.unit();
        let v = -(1.0 - u).ln() * avg_len as f64;
        (v.round() as usize).min(avg_len * 4)
    }

    /// Bernoulli click label with probability `p`.
    pub fn label(&mut self, p: f64) -> i64 {
        i64::from(self.unit() < p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DataRng::seed_from_u64(7);
        let mut b = DataRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.below(1000), b.below(1000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DataRng::seed_from_u64(1);
        let mut b = DataRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.below(1 << 30) == b.below(1 << 30)).count();
        assert!(same < 4);
    }

    #[test]
    fn derived_streams_are_independent() {
        let root = DataRng::seed_from_u64(42);
        let mut a = root.derive(0);
        let mut b = root.derive(1);
        let same = (0..64).filter(|_| a.below(1 << 30) == b.below(1 << 30)).count();
        assert!(same < 4);
        // Deriving the same label twice gives the same stream.
        let mut c = root.derive(0);
        let mut d = DataRng::seed_from_u64(42).derive(0);
        for _ in 0..10 {
            assert_eq!(c.below(100), d.below(100));
        }
    }

    #[test]
    fn sparse_ids_within_vocab_and_skewed() {
        let mut rng = DataRng::seed_from_u64(3);
        let vocab = 500_000u64;
        let mut hot = 0usize;
        const N: usize = 20_000;
        for _ in 0..N {
            let id = rng.sparse_id(vocab);
            assert!((0..vocab as i64).contains(&id));
            if id < (vocab / 100) as i64 {
                hot += 1;
            }
        }
        // 1% of the vocabulary should receive far more than 1% of draws.
        assert!(hot > N / 10, "hot set got only {hot}/{N}");
    }

    #[test]
    fn sparse_len_mean_tracks_average() {
        let mut rng = DataRng::seed_from_u64(11);
        const N: usize = 50_000;
        let total: usize = (0..N).map(|_| rng.sparse_len(20, false)).sum();
        let mean = total as f64 / N as f64;
        assert!((mean - 20.0).abs() < 2.0, "mean length {mean}");
    }

    #[test]
    fn fixed_len_is_fixed() {
        let mut rng = DataRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(rng.sparse_len(1, true), 1);
        }
    }

    #[test]
    fn dense_values_are_finite_and_nonnegative() {
        let mut rng = DataRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.dense_value();
            assert!(v.is_finite() && v >= 0.0);
        }
    }

    #[test]
    fn labels_respect_probability() {
        let mut rng = DataRng::seed_from_u64(13);
        let clicks: i64 = (0..10_000).map(|_| rng.label(0.25)).sum();
        let rate = clicks as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.03, "click rate {rate}");
    }
}
