//! Per-column-chunk statistics recorded in the file footer.
//!
//! Readers use these to size buffers and (in the hwsim layer) to price decode
//! work without touching payload bytes.

use crate::array::Array;
use crate::encoding::varint;
use crate::error::Result;

/// Statistics for one column chunk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnStats {
    /// Number of rows in the chunk.
    pub rows: u64,
    /// Number of scalar elements (= rows for scalars, flattened length for lists).
    pub elements: u64,
    /// Minimum integer value, when the column is integer-typed and non-empty.
    pub min_i64: Option<i64>,
    /// Maximum integer value, when the column is integer-typed and non-empty.
    pub max_i64: Option<i64>,
}

impl ColumnStats {
    /// Computes statistics from an in-memory array.
    #[must_use]
    pub fn from_array(array: &Array) -> Self {
        let (min_i64, max_i64) = match array {
            Array::Int64(v) => (v.iter().min().copied(), v.iter().max().copied()),
            Array::ListInt64 { values, .. } => {
                (values.iter().min().copied(), values.iter().max().copied())
            }
            _ => (None, None),
        };
        ColumnStats {
            rows: array.len() as u64,
            elements: array.element_count() as u64,
            min_i64,
            max_i64,
        }
    }

    pub(crate) fn write(&self, out: &mut Vec<u8>) {
        varint::write_u64(out, self.rows);
        varint::write_u64(out, self.elements);
        match (self.min_i64, self.max_i64) {
            (Some(min), Some(max)) => {
                out.push(1);
                varint::write_i64(out, min);
                varint::write_i64(out, max);
            }
            _ => out.push(0),
        }
    }

    pub(crate) fn read(buf: &[u8], pos: &mut usize) -> Result<Self> {
        let rows = varint::read_u64(buf, pos)?;
        let elements = varint::read_u64(buf, pos)?;
        let has_minmax = {
            let b = buf
                .get(*pos)
                .copied()
                .ok_or(crate::error::ColumnarError::UnexpectedEof { context: "stats flag" })?;
            *pos += 1;
            b == 1
        };
        let (min_i64, max_i64) = if has_minmax {
            (Some(varint::read_i64(buf, pos)?), Some(varint::read_i64(buf, pos)?))
        } else {
            (None, None)
        };
        Ok(ColumnStats { rows, elements, min_i64, max_i64 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_from_int_array() {
        let s = ColumnStats::from_array(&Array::Int64(vec![3, -1, 7].into()));
        assert_eq!(s.rows, 3);
        assert_eq!(s.elements, 3);
        assert_eq!(s.min_i64, Some(-1));
        assert_eq!(s.max_i64, Some(7));
    }

    #[test]
    fn stats_from_list_array_count_elements() {
        let a = Array::from_lists([vec![5i64, 1], vec![9]]).unwrap();
        let s = ColumnStats::from_array(&a);
        assert_eq!(s.rows, 2);
        assert_eq!(s.elements, 3);
        assert_eq!(s.min_i64, Some(1));
        assert_eq!(s.max_i64, Some(9));
    }

    #[test]
    fn stats_from_float_array_have_no_minmax() {
        let s = ColumnStats::from_array(&Array::Float32(vec![1.0, 2.0].into()));
        assert_eq!(s.min_i64, None);
        assert_eq!(s.max_i64, None);
    }

    #[test]
    fn serialization_roundtrips() {
        for s in [
            ColumnStats { rows: 0, elements: 0, min_i64: None, max_i64: None },
            ColumnStats { rows: 10, elements: 200, min_i64: Some(-5), max_i64: Some(i64::MAX) },
        ] {
            let mut buf = Vec::new();
            s.write(&mut buf);
            let mut pos = 0;
            assert_eq!(ColumnStats::read(&buf, &mut pos).unwrap(), s);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn truncated_stats_error() {
        let s = ColumnStats { rows: 1, elements: 1, min_i64: Some(1), max_i64: Some(2) };
        let mut buf = Vec::new();
        s.write(&mut buf);
        buf.pop();
        let mut pos = 0;
        assert!(ColumnStats::read(&buf, &mut pos).is_err());
    }
}
