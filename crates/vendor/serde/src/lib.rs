//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` *names* (marker traits plus no-op
//! derive macros) so that derive attributes on workspace types keep compiling
//! without network access to a crates registry. No serializer exists in this
//! workspace, so no code depends on the absent impls. Swap these shims for
//! the upstream crates if real (de)serialization is ever needed.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize` (no methods; see crate docs).
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize` (no methods; see crate docs).
pub trait Deserialize<'de>: Sized {}
