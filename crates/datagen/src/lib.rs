//! # presto-datagen
//!
//! Dataset configurations and synthetic data generation for the PreSto
//! reproduction (ISCA 2024).
//!
//! The paper evaluates five RecSys models (Table I): RM1 mirrors the public
//! Criteo click-logs dataset, RM2–RM5 scale it to production shape following
//! Meta's published characteristics. This crate provides:
//!
//! * [`RmConfig`] — the five Table I rows plus a builder-style API for
//!   custom configurations and the Fig. 17 feature-scaling knob.
//! * [`generate_batch`] / [`RowBatch`] — deterministic, seeded synthesis of
//!   raw feature tables (heavy-tailed dense values, Zipf-skewed categorical
//!   ids, variable-length sparse lists).
//! * [`Dataset`] — partitioning into device-placed columnar files, the
//!   storage layout of Figure 1.
//! * [`criteo`] — TSV interop with the real Criteo dataset format.
//! * [`WorkloadProfile`] — the per-mini-batch counts that the hardware cost
//!   models in `presto-hwsim` consume.
//!
//! ## Example
//!
//! ```
//! use presto_datagen::{generate_batch, RmConfig};
//!
//! let mut config = RmConfig::rm1();
//! config.batch_size = 256;
//! let batch = generate_batch(&config, 256, 42);
//! assert_eq!(batch.rows(), 256);
//! assert_eq!(batch.schema().len(), 1 + 13 + 26);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod criteo;
pub mod profile;
pub mod rng;
pub mod table;
pub mod writer;

pub use config::{RmConfig, DEFAULT_BATCH_SIZE, EMBEDDING_DIM};
pub use profile::WorkloadProfile;
pub use rng::DataRng;
pub use table::{generate_batch, generated_source_column, raw_schema, RowBatch};
pub use writer::{write_partition, write_partition_grouped, Dataset, Partition};
