//! Fig. 4 — CPU cores required for CPU-centric preprocessing to fully
//! utilize a training node with 8 A100 GPUs.

use presto_bench::{banner, print_table};
use presto_core::experiments::fig4;
use presto_metrics::TextTable;

fn main() {
    banner(
        "Fig. 4: CPU cores required to feed 8x A100",
        "up to 367 cores for RM5; hundreds of cores for production-scale models",
    );
    let mut t = TextTable::new(vec!["model", "CPU cores (model)", "paper (approx.)"]);
    let paper = ["~40", "~300", "~320", "~340", "367"];
    for ((model, cores), p) in fig4().into_iter().zip(paper) {
        t.row(vec![model, cores.to_string(), p.to_owned()]);
    }
    print_table(&t);
    println!("Shape check: production-scale models (RM2-5) require hundreds of");
    println!("cores; RM1 requires tens. Exact values depend on the calibrated");
    println!("per-core throughput and A100 training demand (DESIGN.md #4).");
}
