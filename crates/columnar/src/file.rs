//! The columnar file container: row groups of column chunks plus a footer.
//!
//! File layout (`PSTOCOL4`):
//!
//! ```text
//! magic  "PSTOCOL4"                      (8 bytes)
//! column chunks, back to back            (row-group major, column minor)
//! footer: schema, row-group index        (self-describing, see below)
//! u32 LE  CRC-32 of the footer bytes
//! u32 LE  footer length
//! magic  "PSTOCOL4"                      (8 bytes)
//! ```
//!
//! The footer is a varint-encoded tree:
//!
//! ```text
//! footer      := schema row_group_index
//! schema      := n_fields { name_len name_bytes type_tag }*
//! index       := n_groups { group }*
//! group       := rows { chunk }*            one chunk per schema field
//! chunk       := offset byte_len stats      absolute offset + length in bytes
//! stats       := rows elements pages null_rows minmax   (v4)
//!              | rows elements minmax                    (v2/v3 legacy)
//! minmax      := 0x00 | 0x01 min_i64 max_i64 (zigzag varints)
//! ```
//!
//! Version 4 makes the footer a true **row-group index**: writers emit
//! mini-batch-aligned row groups ([`FileWriter::with_group_rows`] +
//! [`FileWriter::write_batch`]) and every chunk entry carries the group's
//! own page count and null-row count next to its offset/size/row/element
//! stats, so a reader can fetch any single group — `read_row_group(g)` /
//! `read_projected_with(g, ..)` — with exactly one ranged read per
//! projected column and exactly-sized decode buffers, without touching any
//! other group. This random access is what the shuffled epoch streaming in
//! `presto-ops` (`ShuffledStream`) is built on. [`FileMeta::locate_row`] /
//! [`FileMeta::start_rows`] map global row numbers onto groups.
//!
//! Version 3 added the delta-bitpacked block encoding (page encoding tag 3,
//! see [`crate::encoding::block`]) and the per-column [`WritePolicy`].
//! Version 2 (PR 2) 8-byte-aligns every page payload (see
//! [`crate::page::PAYLOAD_ALIGN`]). The reader accepts `PSTOCOL2` and
//! `PSTOCOL3` files as-is — same container layout, legacy per-chunk stats
//! (their [`ColumnStats::pages`]/[`ColumnStats::null_rows`] read back as 0 =
//! unknown), and in practice one whole-partition row group, which v4
//! readers simply treat as an index of length 1. Version-1 files fail at
//! open with a clear bad-magic error instead of a misleading decode
//! failure. Mixed leading/trailing magics are rejected as corruption.
//!
//! The footer-at-the-end design is what lets a reader fetch metadata with two
//! small reads and then issue *exactly one ranged read per projected column*,
//! which is the selective-extraction property the PreSto paper's Extract
//! phase depends on (Section II-B).
//!
//! # Prefix pushdown
//!
//! [`FileReader::read_projected_limits_with`] /
//! [`FileReader::read_column_limit_with`] accept a per-column element
//! limit: `Some(x)` on a list column materializes only the first `x`
//! elements of every list. This is the storage half of the late-
//! materialization contract with `presto-ops`:
//!
//! - **Who may request a prefix.** Only a query planner that has proven
//!   every consumer of the column truncates it first — in `presto-ops`,
//!   plan compilation emits `Prefix(x)` only when *every* reading chain is
//!   headed by `FirstX`, taking the max `x` across readers. The reader
//!   itself does not validate that claim; a too-small limit silently drops
//!   data, exactly like projecting away a needed column would.
//! - **Why offsets stay full.** The RLE length stream always decodes
//!   completely: it is a few bytes per list, row alignment and the
//!   per-page element budget checks depend on it, and it is what lets the
//!   value stream stop early (the last needed element's position is known
//!   only from the lengths). Only the *value* stream is cut short — plain
//!   pages gather by byte range, delta pages skip storing out-of-prefix
//!   elements and hard-stop after the last needed one (see
//!   [`crate::encoding::block`]).
//! - **What comes back.** A compact [`Array::ListInt64`] whose offsets
//!   already reflect the truncation — `min(len, x)` per list — so a
//!   downstream `FirstX(x)` is a no-op. Lists shorter than `x` are
//!   returned whole; empty lists stay empty. Row counts are unchanged,
//!   which keeps the group-level `rows` invariant intact.
//!
//! The on-disk format is untouched: pushdown is purely a reader-side
//! decode strategy, and full-decode reads of the same file are
//! bit-identical to what they always were.

use crate::array::Array;
use crate::checksum::crc32;
use crate::column;
use crate::compress::Compression;
use crate::encoding::varint;
use crate::error::{ColumnarError, Result};
use crate::io::BlobRead;
use crate::page::DEFAULT_PAGE_ROWS;
use crate::schema::{DataType, Field, Schema, WritePolicy};
use crate::stats::ColumnStats;

/// Magic bytes at both ends of every file the writer produces by default.
pub const MAGIC: &[u8; 8] = b"PSTOCOL4";

/// Version-3 magic the reader still accepts (legacy per-chunk stats, no
/// row-group index guarantees — typically one whole-partition group).
pub const MAGIC_V3: &[u8; 8] = b"PSTOCOL3";

/// Version-2 magic the reader still accepts (same as v3 minus the
/// delta-bitpacked page encoding).
pub const MAGIC_V2: &[u8; 8] = b"PSTOCOL2";

/// Container format versions this crate can read (and, for fixtures and
/// compatibility tests, write — see [`FileWriter::with_format_version`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FormatVersion {
    /// `PSTOCOL2`: aligned page payloads, legacy footer stats.
    V2,
    /// `PSTOCOL3`: v2 plus delta-bitpacked pages, legacy footer stats.
    V3,
    /// `PSTOCOL4`: v3 plus the row-group index footer (per-chunk page and
    /// null-row counts). The current default.
    V4,
}

impl FormatVersion {
    /// The magic bytes written at both ends of a file of this version.
    #[must_use]
    pub fn magic(self) -> &'static [u8; 8] {
        match self {
            FormatVersion::V2 => MAGIC_V2,
            FormatVersion::V3 => MAGIC_V3,
            FormatVersion::V4 => MAGIC,
        }
    }

    /// Resolves magic bytes to a version; `None` for unknown magics.
    #[must_use]
    pub fn from_magic(magic: &[u8]) -> Option<Self> {
        match magic {
            m if m == MAGIC => Some(FormatVersion::V4),
            m if m == MAGIC_V3 => Some(FormatVersion::V3),
            m if m == MAGIC_V2 => Some(FormatVersion::V2),
            _ => None,
        }
    }

    /// True when footers of this version carry the v4 stats layout.
    #[must_use]
    fn v4_stats(self) -> bool {
        matches!(self, FormatVersion::V4)
    }
}

/// Footer metadata for one column chunk.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkMeta {
    /// Absolute byte offset of the chunk in the file.
    pub offset: u64,
    /// Chunk length in bytes.
    pub byte_len: u64,
    /// Column statistics.
    pub stats: ColumnStats,
}

/// Footer metadata for one row group.
#[derive(Debug, Clone, PartialEq)]
pub struct RowGroupMeta {
    /// Rows in this group.
    pub rows: u64,
    /// One entry per schema field, in schema order.
    pub columns: Vec<ChunkMeta>,
}

/// Parsed footer of a columnar file.
#[derive(Debug, Clone, PartialEq)]
pub struct FileMeta {
    /// The table schema.
    pub schema: Schema,
    /// Row groups in file order.
    pub row_groups: Vec<RowGroupMeta>,
}

impl FileMeta {
    /// Total rows across all row groups.
    #[must_use]
    pub fn total_rows(&self) -> u64 {
        self.row_groups.iter().map(|rg| rg.rows).sum()
    }

    /// Global row number at which each row group starts (one entry per
    /// group, in file order). `start_rows()[g] + locate_row` arithmetic is
    /// how shuffled readers map epoch positions back to file coordinates.
    #[must_use]
    pub fn start_rows(&self) -> Vec<u64> {
        let mut starts = Vec::with_capacity(self.row_groups.len());
        let mut acc = 0u64;
        for rg in &self.row_groups {
            starts.push(acc);
            acc += rg.rows;
        }
        starts
    }

    /// Locates global row number `row` as `(group index, offset within
    /// group)` by walking the group index; `None` when `row` is past the
    /// end of the file. Empty groups are skipped, never returned.
    #[must_use]
    pub fn locate_row(&self, row: u64) -> Option<(usize, u64)> {
        let mut acc = 0u64;
        let mut candidate = None;
        for (g, rg) in self.row_groups.iter().enumerate() {
            if row < acc + rg.rows {
                candidate = Some((g, row - acc));
                break;
            }
            acc += rg.rows;
        }
        candidate
    }

    fn write(&self, out: &mut Vec<u8>, version: FormatVersion) {
        varint::write_u64(out, self.schema.len() as u64);
        for field in self.schema.fields() {
            varint::write_u64(out, field.name().len() as u64);
            out.extend_from_slice(field.name().as_bytes());
            out.push(field.data_type().to_tag());
        }
        varint::write_u64(out, self.row_groups.len() as u64);
        for rg in &self.row_groups {
            varint::write_u64(out, rg.rows);
            for chunk in &rg.columns {
                varint::write_u64(out, chunk.offset);
                varint::write_u64(out, chunk.byte_len);
                if version.v4_stats() {
                    chunk.stats.write(out);
                } else {
                    chunk.stats.write_legacy(out);
                }
            }
        }
    }

    fn read(buf: &[u8], version: FormatVersion) -> Result<Self> {
        let mut pos = 0usize;
        let n_fields = varint::read_u64(buf, &mut pos)? as usize;
        let mut fields = Vec::with_capacity(n_fields);
        for _ in 0..n_fields {
            let name_len = varint::read_u64(buf, &mut pos)? as usize;
            if buf.len() < pos + name_len {
                return Err(ColumnarError::UnexpectedEof { context: "field name" });
            }
            let name = std::str::from_utf8(&buf[pos..pos + name_len])
                .map_err(|_| ColumnarError::CorruptFile {
                    detail: "field name is not utf-8".into(),
                })?
                .to_owned();
            pos += name_len;
            let Some(&tag) = buf.get(pos) else {
                return Err(ColumnarError::UnexpectedEof { context: "field type tag" });
            };
            pos += 1;
            fields.push(Field::new(name, DataType::from_tag(tag)?));
        }
        let schema = Schema::new(fields)?;
        let n_groups = varint::read_u64(buf, &mut pos)? as usize;
        let mut row_groups = Vec::with_capacity(n_groups);
        for _ in 0..n_groups {
            let rows = varint::read_u64(buf, &mut pos)?;
            let mut columns = Vec::with_capacity(schema.len());
            for _ in 0..schema.len() {
                let offset = varint::read_u64(buf, &mut pos)?;
                let byte_len = varint::read_u64(buf, &mut pos)?;
                let stats = ColumnStats::read(buf, &mut pos, version.v4_stats())?;
                columns.push(ChunkMeta { offset, byte_len, stats });
            }
            row_groups.push(RowGroupMeta { rows, columns });
        }
        Ok(FileMeta { schema, row_groups })
    }
}

/// Streaming writer producing an in-memory columnar file.
///
/// # Examples
///
/// ```
/// use presto_columnar::{Array, DataType, Field, FileWriter, Schema};
///
/// let schema = Schema::new(vec![
///     Field::new("label", DataType::Int64),
///     Field::new("dense_0", DataType::Float32),
/// ])?;
/// let mut writer = FileWriter::new(schema);
/// writer.write_row_group(&[
///     Array::Int64(vec![0, 1].into()),
///     Array::Float32(vec![0.5, 1.5].into()),
/// ])?;
/// let bytes = writer.finish();
/// assert!(bytes.len() > 16);
/// # Ok::<(), presto_columnar::ColumnarError>(())
/// ```
#[derive(Debug)]
pub struct FileWriter {
    schema: Schema,
    page_rows: usize,
    group_rows: Option<usize>,
    version: FormatVersion,
    policy: WritePolicy,
    buf: Vec<u8>,
    row_groups: Vec<RowGroupMeta>,
}

impl FileWriter {
    /// Creates a writer with the default page size.
    #[must_use]
    pub fn new(schema: Schema) -> Self {
        Self::with_page_rows(schema, DEFAULT_PAGE_ROWS)
    }

    /// Creates a writer with an explicit page size (rows per page).
    ///
    /// The starting [`WritePolicy`] is [`WritePolicy::from_env`]: cost-model
    /// encoding selection, no compression, and any process-wide
    /// `PRESTO_FORCE_ENCODING` override applied (CI's encoding matrix).
    #[must_use]
    pub fn with_page_rows(schema: Schema, page_rows: usize) -> Self {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        FileWriter {
            schema,
            page_rows: page_rows.max(1),
            group_rows: None,
            version: FormatVersion::V4,
            policy: WritePolicy::from_env(),
            buf,
            row_groups: Vec::new(),
        }
    }

    /// Sets the target rows per row group for [`FileWriter::write_batch`]:
    /// batches split into mini-batch-aligned groups of `group_rows` rows
    /// (the last group of a batch may be shorter). Group splits share the
    /// batch's buffers ([`column::slice_array`]); only jagged offsets are
    /// rebased.
    ///
    /// Smaller groups give a shuffled reader finer-grained randomness and
    /// work stealing but amplify per-group read overhead (footer entries,
    /// page headers, ranged reads); `examples/shuffle_epochs` sweeps the
    /// trade-off.
    #[must_use]
    pub fn with_group_rows(mut self, group_rows: usize) -> Self {
        self.group_rows = Some(group_rows.max(1));
        self
    }

    /// Writes an older container version (magic + legacy footer stats
    /// layout) — for compatibility fixtures and cross-version tests. Note
    /// the page encodings are still chosen by the active [`WritePolicy`],
    /// so a faithful [`FormatVersion::V2`] file also needs a policy that
    /// avoids the delta-bitpack encoding v2 predates.
    #[must_use]
    pub fn with_format_version(mut self, version: FormatVersion) -> Self {
        self.version = version;
        // The leading magic is always bytes 0..8, already emitted.
        self.buf[0..8].copy_from_slice(version.magic());
        self
    }

    /// Enables per-page payload compression for subsequently written row
    /// groups. Hot column types (sparse ids, integer labels/offsets) keep
    /// skipping compression so they stay lazy-decodable — the
    /// "uncompressed-if-hot" rule; use [`FileWriter::with_policy`] with
    /// [`WritePolicy::compressing_hot_columns`] to compress everything.
    #[must_use]
    pub fn with_compression(mut self, compression: Compression) -> Self {
        self.policy.compression = compression;
        self
    }

    /// Replaces the writer's per-column [`WritePolicy`].
    #[must_use]
    pub fn with_policy(mut self, policy: WritePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The active per-column write policy.
    #[must_use]
    pub fn policy(&self) -> &WritePolicy {
        &self.policy
    }

    /// The schema this writer enforces.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Appends one row group; `columns` must match the schema in count,
    /// order, type and row count.
    ///
    /// # Errors
    ///
    /// Returns [`ColumnarError::InvalidSchema`] on arity/type mismatches and
    /// [`ColumnarError::CountMismatch`] when column lengths differ.
    pub fn write_row_group(&mut self, columns: &[Array]) -> Result<()> {
        if columns.len() != self.schema.len() {
            return Err(ColumnarError::InvalidSchema {
                detail: format!(
                    "row group has {} columns, schema has {}",
                    columns.len(),
                    self.schema.len()
                ),
            });
        }
        let rows = columns.first().map_or(0, Array::len);
        for (field, col) in self.schema.fields().iter().zip(columns) {
            if col.data_type() != field.data_type() {
                return Err(ColumnarError::InvalidSchema {
                    detail: format!(
                        "column {:?} is {} but schema says {}",
                        field.name(),
                        col.data_type(),
                        field.data_type()
                    ),
                });
            }
            if col.len() != rows {
                return Err(ColumnarError::CountMismatch { declared: rows, actual: col.len() });
            }
            col.validate()?;
        }
        let mut metas = Vec::with_capacity(columns.len());
        for col in columns {
            let offset = self.buf.len() as u64;
            let stats =
                column::write_chunk_policy(col, self.page_rows, &self.policy, &mut self.buf)?;
            let byte_len = self.buf.len() as u64 - offset;
            metas.push(ChunkMeta { offset, byte_len, stats });
        }
        self.row_groups.push(RowGroupMeta { rows: rows as u64, columns: metas });
        Ok(())
    }

    /// Appends a batch of rows, split into row groups of the configured
    /// [`FileWriter::with_group_rows`] target (one group holding the whole
    /// batch when no target is set). Validation runs once on the full
    /// batch; the splits are zero-copy windows except for rebased jagged
    /// offsets. An empty batch writes nothing.
    ///
    /// # Errors
    ///
    /// Same as [`FileWriter::write_row_group`].
    pub fn write_batch(&mut self, columns: &[Array]) -> Result<()> {
        let rows = columns.first().map_or(0, Array::len);
        let group_rows = match self.group_rows {
            Some(g) if rows > 0 => g,
            _ => return self.write_row_group(columns),
        };
        // Validate once up front (write_row_group re-validates per group,
        // which is cheap relative to encoding but catches length mismatches
        // before any bytes are emitted).
        if columns.len() != self.schema.len() {
            return Err(ColumnarError::InvalidSchema {
                detail: format!(
                    "batch has {} columns, schema has {}",
                    columns.len(),
                    self.schema.len()
                ),
            });
        }
        for col in columns {
            if col.len() != rows {
                return Err(ColumnarError::CountMismatch { declared: rows, actual: col.len() });
            }
        }
        let mut start = 0usize;
        while start < rows {
            let take = group_rows.min(rows - start);
            let group: Vec<Array> =
                columns.iter().map(|c| column::slice_array(c, start, take)).collect();
            self.write_row_group(&group)?;
            start += take;
        }
        Ok(())
    }

    /// The container version this writer emits.
    #[must_use]
    pub fn format_version(&self) -> FormatVersion {
        self.version
    }

    /// Finalizes the file and returns its bytes.
    #[must_use]
    pub fn finish(mut self) -> Vec<u8> {
        let meta = FileMeta { schema: self.schema.clone(), row_groups: self.row_groups.clone() };
        let mut footer = Vec::new();
        meta.write(&mut footer, self.version);
        let footer_crc = crc32(&footer);
        let footer_len = footer.len() as u32;
        self.buf.extend_from_slice(&footer);
        self.buf.extend_from_slice(&footer_crc.to_le_bytes());
        self.buf.extend_from_slice(&footer_len.to_le_bytes());
        self.buf.extend_from_slice(self.version.magic());
        self.buf
    }
}

/// Reader with per-column random access over any [`BlobRead`] backend.
#[derive(Debug)]
pub struct FileReader<B> {
    blob: B,
    meta: FileMeta,
    version: FormatVersion,
}

impl<B: BlobRead> FileReader<B> {
    /// Opens a columnar file, validating magic numbers and the footer CRC.
    ///
    /// # Errors
    ///
    /// Returns [`ColumnarError::CorruptFile`] / [`ColumnarError::ChecksumMismatch`]
    /// on structural damage.
    pub fn open(blob: B) -> Result<Self> {
        let total = blob.blob_len();
        let tail_len = 8 + 4 + 4;
        if total < (8 + tail_len) as u64 {
            return Err(ColumnarError::CorruptFile {
                detail: format!("file of {total} bytes is too small"),
            });
        }
        let head = blob.read_at(0, 8)?;
        let Some(version) = FormatVersion::from_magic(&head) else {
            return Err(ColumnarError::CorruptFile { detail: "bad leading magic".into() });
        };
        let tail = blob.read_at(total - tail_len as u64, tail_len)?;
        if tail[8..] != head {
            return Err(ColumnarError::CorruptFile { detail: "bad trailing magic".into() });
        }
        let footer_crc = u32::from_le_bytes(tail[0..4].try_into().expect("4 bytes"));
        let footer_len = u32::from_le_bytes(tail[4..8].try_into().expect("4 bytes")) as u64;
        let footer_end = total - tail_len as u64;
        if footer_len > footer_end - 8 {
            return Err(ColumnarError::CorruptFile {
                detail: format!("footer length {footer_len} exceeds file"),
            });
        }
        let footer = blob.read_at(footer_end - footer_len, footer_len as usize)?;
        let actual = crc32(&footer);
        if actual != footer_crc {
            return Err(ColumnarError::ChecksumMismatch { expected: footer_crc, actual });
        }
        let meta = FileMeta::read(&footer, version)?;
        Ok(FileReader { blob, meta, version })
    }

    /// The parsed footer.
    #[must_use]
    pub fn meta(&self) -> &FileMeta {
        &self.meta
    }

    /// The container version this file was written with.
    #[must_use]
    pub fn version(&self) -> FormatVersion {
        self.version
    }

    /// The table schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.meta.schema
    }

    /// Number of row groups.
    #[must_use]
    pub fn row_group_count(&self) -> usize {
        self.meta.row_groups.len()
    }

    /// Reads one column of one row group with a single ranged read.
    ///
    /// # Errors
    ///
    /// Returns [`ColumnarError::UnknownColumn`] for bad indices plus any
    /// decode error.
    pub fn read_column(&self, row_group: usize, column: usize) -> Result<Array> {
        self.read_column_with(row_group, column, &mut crate::io::ReadScratch::new())
    }

    /// Like [`FileReader::read_column`], staging the chunk bytes in a
    /// caller-provided [`crate::ReadScratch`] — the zero-copy Extract path.
    ///
    /// When the backend can expose its bytes directly
    /// ([`BlobRead::as_slice`]), the chunk is decoded straight from storage
    /// memory and the scratch is not touched at all; otherwise the chunk is
    /// read into the scratch's recycled buffer. Either way, a caller that
    /// reuses one scratch across columns and partitions performs no
    /// per-chunk staging allocation.
    ///
    /// # Errors
    ///
    /// Same as [`FileReader::read_column`].
    pub fn read_column_with(
        &self,
        row_group: usize,
        column: usize,
        scratch: &mut crate::io::ReadScratch,
    ) -> Result<Array> {
        let rg = self.meta.row_groups.get(row_group).ok_or_else(|| {
            ColumnarError::UnknownColumn { name: format!("row group {row_group}") }
        })?;
        let chunk = rg
            .columns
            .get(column)
            .ok_or_else(|| ColumnarError::UnknownColumn { name: format!("column {column}") })?;
        let field = self.meta.schema.field(column).expect("meta/schema in sync");
        let data_type = field.data_type();
        let (offset, len) = (chunk.offset, chunk.byte_len as usize);
        // Footer stats size the batched decoder's outputs exactly.
        let rows = usize::try_from(rg.rows).unwrap_or(usize::MAX);
        let elements = usize::try_from(chunk.stats.elements).unwrap_or(usize::MAX);
        let batchable = matches!(data_type, DataType::Int64 | DataType::ListInt64);
        // Lazy decode: when the blob shares its allocation, aligned plain
        // pages are returned as views over the stored bytes — no staging
        // and no value copy (see `column::read_chunk_shared`). Multi-page
        // integer chunks cannot stay lazy (concat copies anyway), so they
        // take the batched single-output-buffer decode instead.
        let array = if let Some(shared) = self.blob.as_shared() {
            let start = usize::try_from(offset).map_err(|_| ColumnarError::Io {
                detail: format!("chunk offset {offset} out of addressable range"),
            })?;
            let end = start
                .checked_add(len)
                .filter(|&e| e <= shared.len())
                .ok_or(ColumnarError::UnexpectedEof { context: "column chunk range" })?;
            if batchable && column::peek_page_count(&shared[..end], start)? > 1 {
                let (_, staging, lengths) = scratch.split_parts();
                let mut pos = start;
                column::read_chunk_batched(
                    &shared[..end],
                    &mut pos,
                    data_type,
                    0,
                    rows,
                    elements,
                    staging,
                    lengths,
                )?
            } else {
                column::read_chunk_shared(&shared, offset, len, data_type)?
            }
        } else {
            let (bytes, staging, lengths): (&[u8], &mut Vec<u8>, &mut Vec<u64>) =
                match self.blob.as_slice() {
                    Some(all) => {
                        let start = usize::try_from(offset).map_err(|_| ColumnarError::Io {
                            detail: format!("chunk offset {offset} out of addressable range"),
                        })?;
                        // checked_add: corrupt metadata must surface as Err,
                        // not an overflow panic.
                        let bytes =
                            start.checked_add(len).and_then(|end| all.get(start..end)).ok_or(
                                ColumnarError::UnexpectedEof { context: "column chunk range" },
                            )?;
                        let (_, staging, lengths) = scratch.split_parts();
                        (bytes, staging, lengths)
                    }
                    None => scratch.read_split(&self.blob, offset, len)?,
                };
            let mut pos = 0usize;
            if batchable {
                column::read_chunk_batched(
                    bytes, &mut pos, data_type, offset, rows, elements, staging, lengths,
                )?
            } else {
                column::read_chunk_at(bytes, &mut pos, data_type, offset)?
            }
        };
        if array.len() as u64 != rg.rows {
            return Err(ColumnarError::CountMismatch {
                declared: rg.rows as usize,
                actual: array.len(),
            });
        }
        Ok(array)
    }

    /// Reads several columns by index (the projection path).
    ///
    /// # Errors
    ///
    /// Same as [`FileReader::read_column`].
    pub fn read_columns(&self, row_group: usize, columns: &[usize]) -> Result<Vec<Array>> {
        columns.iter().map(|&c| self.read_column(row_group, c)).collect()
    }

    /// Reads several columns by name.
    ///
    /// # Errors
    ///
    /// Returns [`ColumnarError::UnknownColumn`] for unknown names plus any
    /// decode error.
    pub fn read_projected(&self, row_group: usize, names: &[&str]) -> Result<Vec<Array>> {
        let idx = self.meta.schema.project(names)?;
        self.read_columns(row_group, &idx)
    }

    /// Like [`FileReader::read_projected`], reusing a [`crate::ReadScratch`]
    /// for every chunk read (see [`FileReader::read_column_with`]).
    ///
    /// # Errors
    ///
    /// Same as [`FileReader::read_projected`].
    pub fn read_projected_with(
        &self,
        row_group: usize,
        names: &[&str],
        scratch: &mut crate::io::ReadScratch,
    ) -> Result<Vec<Array>> {
        let idx = self.meta.schema.project(names)?;
        idx.iter().map(|&c| self.read_column_with(row_group, c, scratch)).collect()
    }

    /// Like [`FileReader::read_projected_with`], honoring a per-column
    /// element limit — the prefix-pushdown read (see the module docs).
    /// `limits[i]` applies to `names[i]`: `Some(x)` materializes only the
    /// first `x` elements of each list in that column; `None` reads the
    /// column in full.
    ///
    /// # Errors
    ///
    /// Same as [`FileReader::read_projected_with`], plus
    /// [`ColumnarError::CountMismatch`] when `limits` and `names` disagree
    /// in length.
    pub fn read_projected_limits_with(
        &self,
        row_group: usize,
        names: &[&str],
        limits: &[Option<usize>],
        scratch: &mut crate::io::ReadScratch,
    ) -> Result<Vec<Array>> {
        if limits.len() != names.len() {
            return Err(ColumnarError::CountMismatch {
                declared: names.len(),
                actual: limits.len(),
            });
        }
        let idx = self.meta.schema.project(names)?;
        idx.iter()
            .zip(limits)
            .map(|(&c, &limit)| self.read_column_limit_with(row_group, c, limit, scratch))
            .collect()
    }

    /// Prefix-pushdown single-column read: like
    /// [`FileReader::read_column_with`], but when `limit` is `Some(x)` and
    /// the column is a list column, only the first `x` elements of every
    /// list are materialized (offsets in the returned array already reflect
    /// the truncation). `None` — or a non-list column — delegates to the
    /// full read unchanged.
    ///
    /// # Errors
    ///
    /// Same as [`FileReader::read_column_with`].
    pub fn read_column_limit_with(
        &self,
        row_group: usize,
        column: usize,
        limit: Option<usize>,
        scratch: &mut crate::io::ReadScratch,
    ) -> Result<Array> {
        let Some(prefix) = limit else {
            return self.read_column_with(row_group, column, scratch);
        };
        let rg = self.meta.row_groups.get(row_group).ok_or_else(|| {
            ColumnarError::UnknownColumn { name: format!("row group {row_group}") }
        })?;
        let chunk = rg
            .columns
            .get(column)
            .ok_or_else(|| ColumnarError::UnknownColumn { name: format!("column {column}") })?;
        let field = self.meta.schema.field(column).expect("meta/schema in sync");
        if field.data_type() != DataType::ListInt64 {
            return self.read_column_with(row_group, column, scratch);
        }
        let (offset, len) = (chunk.offset, chunk.byte_len as usize);
        let rows = usize::try_from(rg.rows).unwrap_or(usize::MAX);
        let elements = usize::try_from(chunk.stats.elements).unwrap_or(usize::MAX);
        // The prefix decode always gathers into a fresh compact buffer, so
        // the lazy zero-copy paths never apply: route every blob flavor to
        // `read_chunk_prefix` over the raw chunk bytes.
        let array = if let Some(shared) = self.blob.as_shared() {
            let start = usize::try_from(offset).map_err(|_| ColumnarError::Io {
                detail: format!("chunk offset {offset} out of addressable range"),
            })?;
            let end = start
                .checked_add(len)
                .filter(|&e| e <= shared.len())
                .ok_or(ColumnarError::UnexpectedEof { context: "column chunk range" })?;
            let (_, staging, lengths) = scratch.split_parts();
            let mut pos = start;
            column::read_chunk_prefix(
                &shared[..end],
                &mut pos,
                0,
                rows,
                elements,
                prefix,
                staging,
                lengths,
            )?
        } else {
            let (bytes, staging, lengths): (&[u8], &mut Vec<u8>, &mut Vec<u64>) =
                match self.blob.as_slice() {
                    Some(all) => {
                        let start = usize::try_from(offset).map_err(|_| ColumnarError::Io {
                            detail: format!("chunk offset {offset} out of addressable range"),
                        })?;
                        let bytes =
                            start.checked_add(len).and_then(|end| all.get(start..end)).ok_or(
                                ColumnarError::UnexpectedEof { context: "column chunk range" },
                            )?;
                        let (_, staging, lengths) = scratch.split_parts();
                        (bytes, staging, lengths)
                    }
                    None => scratch.read_split(&self.blob, offset, len)?,
                };
            let mut pos = 0usize;
            column::read_chunk_prefix(
                bytes, &mut pos, offset, rows, elements, prefix, staging, lengths,
            )?
        };
        if array.len() as u64 != rg.rows {
            return Err(ColumnarError::CountMismatch {
                declared: rg.rows as usize,
                actual: array.len(),
            });
        }
        Ok(array)
    }

    /// Reads an entire row group in schema order.
    ///
    /// # Errors
    ///
    /// Same as [`FileReader::read_column`].
    pub fn read_row_group(&self, row_group: usize) -> Result<Vec<Array>> {
        let all: Vec<usize> = (0..self.meta.schema.len()).collect();
        self.read_columns(row_group, &all)
    }

    /// Returns the wrapped blob.
    pub fn into_inner(self) -> B {
        self.blob
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{CountingBlob, MemBlob};

    fn sample_schema() -> Schema {
        Schema::new(vec![
            Field::new("label", DataType::Int64),
            Field::new("dense_0", DataType::Float32),
            Field::new("sparse_0", DataType::ListInt64),
        ])
        .unwrap()
    }

    fn sample_columns(rows: usize, salt: i64) -> Vec<Array> {
        vec![
            Array::Int64((0..rows as i64).map(|i| (i + salt) % 2).collect()),
            Array::Float32((0..rows).map(|i| i as f32 * 0.5).collect()),
            Array::from_lists((0..rows).map(|i| vec![salt + i as i64; i % 4]).collect::<Vec<_>>())
                .unwrap(),
        ]
    }

    fn sample_file(groups: usize, rows: usize) -> Vec<u8> {
        let mut w = FileWriter::with_page_rows(sample_schema(), 128);
        for g in 0..groups {
            w.write_row_group(&sample_columns(rows, g as i64)).unwrap();
        }
        w.finish()
    }

    #[test]
    fn full_roundtrip() {
        let bytes = sample_file(3, 500);
        let reader = FileReader::open(MemBlob::new(bytes)).unwrap();
        assert_eq!(reader.row_group_count(), 3);
        assert_eq!(reader.meta().total_rows(), 1500);
        for g in 0..3 {
            let cols = reader.read_row_group(g).unwrap();
            assert_eq!(cols, sample_columns(500, g as i64));
        }
    }

    #[test]
    fn projection_reads_only_requested_chunks() {
        // A traffic-ratio assertion: pin the cost-model policy so the CI
        // encoding matrix (PRESTO_FORCE_ENCODING=plain inflates the label
        // chunk) cannot skew the ratio.
        let bytes = {
            let mut w = FileWriter::with_page_rows(sample_schema(), 128)
                .with_policy(WritePolicy::default());
            w.write_row_group(&sample_columns(2000, 0)).unwrap();
            w.finish()
        };
        let total_len = bytes.len() as u64;
        let blob = CountingBlob::new(MemBlob::new(bytes));
        let reader = FileReader::open(blob).unwrap();
        let after_open = reader.into_inner();
        after_open.reset();
        let reader = FileReader::open(after_open).unwrap();
        let metadata_traffic = reader.into_inner();
        let open_cost = metadata_traffic.bytes_read();
        let reader = FileReader::open(metadata_traffic).unwrap();
        reader.read_projected(0, &["label"]).unwrap();
        let blob = reader.into_inner();
        // Subtract the second open()'s metadata reads; what's left is the
        // ranged read for the projected column chunk only.
        let label_traffic = blob.bytes_read() - 2 * open_cost;
        assert!(
            label_traffic < total_len / 4,
            "projected read touched {label_traffic} of {total_len} bytes"
        );
    }

    #[test]
    fn scratch_reads_match_allocating_reads() {
        use crate::io::ReadScratch;
        let bytes = sample_file(2, 300);
        // MemBlob decodes straight from storage memory...
        let reader = FileReader::open(MemBlob::new(bytes.clone())).unwrap();
        let mut scratch = ReadScratch::new();
        for g in 0..2 {
            let plain = reader.read_projected(g, &["label", "sparse_0"]).unwrap();
            let scratched =
                reader.read_projected_with(g, &["label", "sparse_0"], &mut scratch).unwrap();
            assert_eq!(plain, scratched);
        }
        assert_eq!(scratch.capacity(), 0, "slice-backed blob must not touch the scratch");
        // ...while an opaque backend stages chunks in the recycled buffer.
        let reader = FileReader::open(CountingBlob::new(MemBlob::new(bytes))).unwrap();
        let a = reader.read_projected_with(0, &["dense_0"], &mut scratch).unwrap();
        let b = reader.read_projected(0, &["dense_0"]).unwrap();
        assert_eq!(a, b);
        assert!(scratch.capacity() > 0);
    }

    /// Truncates every list of a `ListInt64` array to its first `x`
    /// elements — the reference semantics prefix pushdown must match.
    fn truncate_lists(array: &Array, x: usize) -> Array {
        let Array::ListInt64 { offsets, values } = array else { panic!("list array") };
        let lists: Vec<Vec<i64>> = offsets
            .windows(2)
            .map(|w| {
                let (s, e) = (w[0] as usize, w[1] as usize);
                values[s..s + (e - s).min(x)].to_vec()
            })
            .collect();
        Array::from_lists(lists).unwrap()
    }

    #[test]
    fn prefix_limit_reads_match_truncated_full_reads() {
        use crate::io::ReadScratch;
        let bytes = sample_file(2, 300); // list lengths 0..=3: shorter than and equal to x
        let mut scratch = ReadScratch::new();
        for x in [1usize, 2, 8] {
            // Shared blob path...
            let reader = FileReader::open(MemBlob::new(bytes.clone())).unwrap();
            for g in 0..2 {
                let full = reader.read_projected(g, &["label", "sparse_0"]).unwrap();
                let limited = reader
                    .read_projected_limits_with(
                        g,
                        &["label", "sparse_0"],
                        &[None, Some(x)],
                        &mut scratch,
                    )
                    .unwrap();
                assert_eq!(limited[0], full[0]);
                assert_eq!(limited[1], truncate_lists(&full[1], x), "x={x} g={g}");
            }
            // ...and the opaque staging path.
            let reader = FileReader::open(CountingBlob::new(MemBlob::new(bytes.clone()))).unwrap();
            let full = reader.read_projected(1, &["sparse_0"]).unwrap();
            let limited = reader
                .read_projected_limits_with(1, &["sparse_0"], &[Some(x)], &mut scratch)
                .unwrap();
            assert_eq!(limited[0], truncate_lists(&full[0], x));
        }
        // Mismatched limits length is rejected.
        let reader = FileReader::open(MemBlob::new(bytes)).unwrap();
        assert!(reader
            .read_projected_limits_with(0, &["label"], &[None, Some(1)], &mut scratch)
            .is_err());
    }

    #[test]
    fn shared_blob_decodes_plain_f32_pages_lazily() {
        // Single-page chunks: multi-page chunks concatenate (and so copy).
        let bytes = {
            let mut w = FileWriter::with_page_rows(sample_schema(), 1024);
            w.write_row_group(&sample_columns(512, 1)).unwrap();
            w.finish()
        };
        let blob = MemBlob::new(bytes.clone());
        let blob_start = blob.as_bytes().as_ptr() as usize;
        let blob_end = blob_start + blob.as_bytes().len();
        let reader = FileReader::open(blob).unwrap();
        let cols = reader.read_row_group(0).unwrap();
        // dense_0 is a plain-encoded f32 column: with an aligned payload its
        // decoded buffer must alias the blob's memory, not a copy.
        let Array::Float32(values) = &cols[1] else { panic!("dense_0 is f32") };
        assert!(values.is_byte_backed(), "plain f32 page should decode lazily");
        let p = values.as_slice().as_ptr() as usize;
        assert!((blob_start..blob_end).contains(&p), "decoded data must live inside the blob");
        // Bit-identical to the staged copy-decode path (opaque backend).
        let opaque = FileReader::open(CountingBlob::new(MemBlob::new(bytes))).unwrap();
        assert_eq!(cols, opaque.read_row_group(0).unwrap());
    }

    #[test]
    fn shared_blob_decodes_plain_list_values_lazily() {
        // Plain-encoded list values are the lazy-decode subject, so pin the
        // encoding explicitly (immune to PRESTO_FORCE_ENCODING in the CI
        // encoding matrix).
        let lists: Vec<Vec<i64>> = (0..600u64)
            .map(|i| {
                (0..(i % 5))
                    .map(|j| {
                        // splitmix-style scramble: neighbors are uncorrelated.
                        let mut v = (i * 5 + j + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                        v ^= v >> 31;
                        v.wrapping_mul(0xbf58_476d_1ce4_e5b9) as i64
                    })
                    .collect()
            })
            .collect();
        let schema = Schema::new(vec![Field::new("ids", DataType::ListInt64)]).unwrap();
        let mut w = FileWriter::with_page_rows(schema, 1024)
            .with_policy(WritePolicy::default().with_forced_encoding(crate::Encoding::Plain));
        w.write_row_group(&[Array::from_lists(lists.clone()).unwrap()]).unwrap();
        let bytes = w.finish();
        let reader = FileReader::open(MemBlob::new(bytes.clone())).unwrap();
        let cols = reader.read_row_group(0).unwrap();
        let Array::ListInt64 { values, .. } = &cols[0] else { panic!("list column") };
        assert!(values.is_byte_backed(), "plain list values should decode lazily");
        let opaque = FileReader::open(CountingBlob::new(MemBlob::new(bytes))).unwrap();
        assert_eq!(cols, opaque.read_row_group(0).unwrap());
    }

    #[test]
    fn lazy_and_copy_decode_agree_across_page_sizes() {
        for page_rows in [1usize, 7, 128, 4096] {
            let mut w = FileWriter::with_page_rows(sample_schema(), page_rows);
            w.write_row_group(&sample_columns(300, 3)).unwrap();
            let bytes = w.finish();
            let lazy = FileReader::open(MemBlob::new(bytes.clone())).unwrap();
            let copy = FileReader::open(CountingBlob::new(MemBlob::new(bytes))).unwrap();
            assert_eq!(
                lazy.read_row_group(0).unwrap(),
                copy.read_row_group(0).unwrap(),
                "page_rows {page_rows}"
            );
        }
    }

    #[test]
    fn read_by_name_matches_read_by_index() {
        let bytes = sample_file(1, 100);
        let reader = FileReader::open(MemBlob::new(bytes)).unwrap();
        let by_name = reader.read_projected(0, &["sparse_0"]).unwrap();
        let by_idx = reader.read_columns(0, &[2]).unwrap();
        assert_eq!(by_name, by_idx);
    }

    #[test]
    fn unknown_column_and_group_error() {
        let bytes = sample_file(1, 10);
        let reader = FileReader::open(MemBlob::new(bytes)).unwrap();
        assert!(reader.read_projected(0, &["nope"]).is_err());
        assert!(reader.read_column(5, 0).is_err());
        assert!(reader.read_column(0, 99).is_err());
    }

    #[test]
    fn writer_rejects_schema_violations() {
        let mut w = FileWriter::new(sample_schema());
        // Wrong arity.
        assert!(w.write_row_group(&[Array::Int64(vec![1].into())]).is_err());
        // Wrong type order.
        assert!(w
            .write_row_group(&[
                Array::Float32(vec![1.0].into()),
                Array::Float32(vec![1.0].into()),
                Array::from_lists([vec![1i64]]).unwrap(),
            ])
            .is_err());
        // Mismatched row counts.
        assert!(w
            .write_row_group(&[
                Array::Int64(vec![1, 2].into()),
                Array::Float32(vec![1.0].into()),
                Array::from_lists([vec![1i64]]).unwrap(),
            ])
            .is_err());
    }

    #[test]
    fn corrupt_footer_detected() {
        let mut bytes = sample_file(1, 50);
        // Flip a bit inside the footer (just before the 16-byte tail).
        let idx = bytes.len() - 20;
        bytes[idx] ^= 0x01;
        assert!(FileReader::open(MemBlob::new(bytes)).is_err());
    }

    #[test]
    fn bad_magic_detected() {
        let mut bytes = sample_file(1, 10);
        bytes[0] = b'X';
        assert!(matches!(
            FileReader::open(MemBlob::new(bytes)),
            Err(ColumnarError::CorruptFile { .. })
        ));
        let mut bytes = sample_file(1, 10);
        let n = bytes.len();
        bytes[n - 1] = b'X';
        assert!(FileReader::open(MemBlob::new(bytes)).is_err());
    }

    #[test]
    fn tiny_file_rejected() {
        assert!(FileReader::open(MemBlob::new(vec![0; 10])).is_err());
    }

    #[test]
    fn compressed_files_roundtrip_and_shrink() {
        use crate::compress::Compression;
        // Repetitive labels + low-cardinality lists: compressible content.
        let schema = sample_schema();
        let cols = sample_columns(2000, 1);
        let plain = {
            let mut w = FileWriter::with_page_rows(schema.clone(), 256);
            w.write_row_group(&cols).unwrap();
            w.finish()
        };
        let packed = {
            let mut w = FileWriter::with_page_rows(schema, 256).with_compression(Compression::Lz);
            w.write_row_group(&cols).unwrap();
            w.finish()
        };
        assert!(packed.len() <= plain.len(), "{} > {}", packed.len(), plain.len());
        let reader = FileReader::open(MemBlob::new(packed)).unwrap();
        assert_eq!(reader.read_row_group(0).unwrap(), cols);
    }

    #[test]
    fn empty_row_group_list_roundtrips() {
        let w = FileWriter::new(sample_schema());
        let bytes = w.finish();
        let reader = FileReader::open(MemBlob::new(bytes)).unwrap();
        assert_eq!(reader.row_group_count(), 0);
        assert_eq!(reader.meta().total_rows(), 0);
        assert_eq!(reader.version(), FormatVersion::V4);
    }

    #[test]
    fn write_batch_splits_into_target_sized_groups() {
        let cols = sample_columns(200, 5);
        let mut w = FileWriter::with_page_rows(sample_schema(), 64).with_group_rows(64);
        w.write_batch(&cols).unwrap();
        let reader = FileReader::open(MemBlob::new(w.finish())).unwrap();
        assert_eq!(reader.row_group_count(), 4);
        let rows: Vec<u64> = reader.meta().row_groups.iter().map(|rg| rg.rows).collect();
        assert_eq!(rows, vec![64, 64, 64, 8]);
        assert_eq!(reader.meta().total_rows(), 200);
        // Each group reads back as the matching row window of the batch.
        let mut start = 0usize;
        for (g, take) in [(0usize, 64usize), (1, 64), (2, 64), (3, 8)] {
            let expect: Vec<Array> =
                cols.iter().map(|c| column::slice_array(c, start, take)).collect();
            assert_eq!(reader.read_row_group(g).unwrap(), expect, "group {g}");
            start += take;
        }
    }

    #[test]
    fn write_batch_group_size_edge_cases() {
        // Group size larger than the batch → one group; group size 1 → one
        // group per row.
        let cols = sample_columns(5, 2);
        let mut w = FileWriter::new(sample_schema()).with_group_rows(1000);
        w.write_batch(&cols).unwrap();
        let r = FileReader::open(MemBlob::new(w.finish())).unwrap();
        assert_eq!(r.row_group_count(), 1);
        assert_eq!(r.read_row_group(0).unwrap(), cols);

        let mut w = FileWriter::new(sample_schema()).with_group_rows(1);
        w.write_batch(&cols).unwrap();
        let r = FileReader::open(MemBlob::new(w.finish())).unwrap();
        assert_eq!(r.row_group_count(), 5);
        for g in 0..5 {
            let expect: Vec<Array> = cols.iter().map(|c| column::slice_array(c, g, 1)).collect();
            assert_eq!(r.read_row_group(g).unwrap(), expect);
        }

        // No group target set → write_batch degenerates to one group.
        let mut w = FileWriter::new(sample_schema());
        w.write_batch(&cols).unwrap();
        let r = FileReader::open(MemBlob::new(w.finish())).unwrap();
        assert_eq!(r.row_group_count(), 1);

        // Empty batch writes nothing even with a group target.
        let mut w = FileWriter::new(sample_schema()).with_group_rows(4);
        w.write_batch(&sample_columns(0, 0)).unwrap();
        let r = FileReader::open(MemBlob::new(w.finish())).unwrap();
        assert_eq!(r.row_group_count(), 1); // single empty group via write_row_group
        assert_eq!(r.meta().total_rows(), 0);
    }

    #[test]
    fn locate_row_and_start_rows_index_the_groups() {
        let mut w = FileWriter::with_page_rows(sample_schema(), 64).with_group_rows(64);
        w.write_batch(&sample_columns(200, 1)).unwrap();
        let reader = FileReader::open(MemBlob::new(w.finish())).unwrap();
        let meta = reader.meta();
        assert_eq!(meta.start_rows(), vec![0, 64, 128, 192]);
        assert_eq!(meta.locate_row(0), Some((0, 0)));
        assert_eq!(meta.locate_row(63), Some((0, 63)));
        assert_eq!(meta.locate_row(64), Some((1, 0)));
        assert_eq!(meta.locate_row(199), Some((3, 7)));
        assert_eq!(meta.locate_row(200), None);
        assert_eq!(meta.locate_row(u64::MAX), None);
    }

    #[test]
    fn v4_footer_records_pages_and_null_rows() {
        let mut w = FileWriter::with_page_rows(sample_schema(), 128);
        w.write_row_group(&sample_columns(500, 0)).unwrap();
        let reader = FileReader::open(MemBlob::new(w.finish())).unwrap();
        let rg = &reader.meta().row_groups[0];
        // 500 rows at 128 rows/page → 4 pages per chunk.
        for chunk in &rg.columns {
            assert_eq!(chunk.stats.pages, 4);
        }
        // sample_columns gives rows with i % 4 == 0 empty lists: 125 of 500.
        assert_eq!(rg.columns[2].stats.null_rows, 125);
        assert_eq!(rg.columns[0].stats.null_rows, 0);
    }

    #[test]
    fn legacy_versions_write_and_read_back() {
        for version in [FormatVersion::V2, FormatVersion::V3] {
            let cols = sample_columns(300, 2);
            let mut w = FileWriter::with_page_rows(sample_schema(), 128)
                .with_policy(WritePolicy::default())
                .with_format_version(version);
            w.write_row_group(&cols).unwrap();
            let bytes = w.finish();
            assert_eq!(&bytes[0..8], version.magic());
            assert_eq!(&bytes[bytes.len() - 8..], version.magic());
            let reader = FileReader::open(MemBlob::new(bytes)).unwrap();
            assert_eq!(reader.version(), version);
            // Legacy footers carry no page/null counts.
            let chunk = &reader.meta().row_groups[0].columns[0];
            assert_eq!(chunk.stats.pages, 0);
            assert_eq!(chunk.stats.null_rows, 0);
            assert_eq!(reader.read_row_group(0).unwrap(), cols, "{version:?}");
        }
    }

    #[test]
    fn mixed_valid_version_magics_are_rejected() {
        // Leading v4, trailing v3 — both valid magics, but mismatched.
        let mut bytes = sample_file(1, 10);
        let n = bytes.len();
        bytes[n - 8..].copy_from_slice(MAGIC_V3);
        assert!(matches!(
            FileReader::open(MemBlob::new(bytes)),
            Err(ColumnarError::CorruptFile { .. })
        ));
    }

    #[test]
    fn last_short_row_group_decodes_batched_exactly() {
        // Regression for group-subset buffer sizing: the batched decoder
        // must size the short trailing group (8 rows) from that group's own
        // index entry, not file totals (200 rows). Multi-page chunks force
        // the batched path; the opaque backend forces staging reads.
        let cols = sample_columns(200, 7);
        let mut w = FileWriter::with_page_rows(sample_schema(), 4).with_group_rows(64);
        w.write_batch(&cols).unwrap();
        let bytes = w.finish();
        let expect: Vec<Array> = cols.iter().map(|c| column::slice_array(c, 192, 8)).collect();
        let shared = FileReader::open(MemBlob::new(bytes.clone())).unwrap();
        let last = shared.row_group_count() - 1;
        assert_eq!(shared.meta().row_groups[last].rows, 8);
        assert_eq!(shared.read_row_group(last).unwrap(), expect);
        let opaque = FileReader::open(CountingBlob::new(MemBlob::new(bytes))).unwrap();
        assert_eq!(opaque.read_row_group(last).unwrap(), expect);
    }
}
