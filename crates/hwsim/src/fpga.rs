//! PreSto ISP accelerator model (Fig. 10 microarchitecture).
//!
//! The accelerator is a chain of hardwired units — Decoder, Bucketize,
//! SigridHash, Log, plus output assembly — each with on-chip feature buffers
//! and double buffering (Section IV-C). The model follows the paper's
//! observed behaviour:
//!
//! * **Latency** of one mini-batch = sum of unit stage times plus per-stage
//!   invocation overhead: a batch's columns flow through the units in
//!   sequence, with double buffering hiding DRAM fetch *within* a unit but
//!   not across units. This matches the paper's Extract share of ~40.8%
//!   and end-to-end speedups of ~9.6× (Fig. 12).
//! * **Throughput** in steady state = 1 / max(stage time): consecutive
//!   mini-batches pipeline across the units, which is how one SmartSSD
//!   rivals ~50 CPU cores (Fig. 11) while its single-batch latency is only
//!   ~10× better.

use crate::breakdown::StageBreakdown;
use crate::calib;
use crate::ssd::SsdModel;
use crate::units::{BytesPerSec, Secs, Watts};
use presto_datagen::WorkloadProfile;

/// How raw bytes reach the accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedPath {
    /// SSD→FPGA peer-to-peer inside a SmartSSD (no host round trip).
    P2p,
    /// Host-staged DMA (PreSto(U280): SSD → host → card over PCIe).
    HostStaged,
    /// Raw data arrives over the datacenter network (disaggregated
    /// accelerator pool, Fig. 7(b)); the copy-in time is priced by the
    /// caller's network model and excluded from the device pipeline.
    Remote,
}

/// One ISP accelerator build (SmartSSD or U280 variants).
#[derive(Debug, Clone, PartialEq)]
pub struct IspModel {
    name: &'static str,
    clock_hz: f64,
    decode_bytes_per_cycle: f64,
    bucketize_elems_per_cycle: f64,
    sigridhash_elems_per_cycle: f64,
    log_elems_per_cycle: f64,
    dram_bw: BytesPerSec,
    stage_overhead: Secs,
    feed: FeedPath,
    ssd: SsdModel,
    host_read_bw: BytesPerSec,
    power: Watts,
    double_buffering: bool,
    link_bw_override: Option<BytesPerSec>,
}

impl IspModel {
    /// The SmartSSD build of Table II (223 MHz, 25 W, P2P-fed).
    #[must_use]
    pub fn smartssd() -> Self {
        use calib::smartssd as c;
        IspModel {
            name: "PreSto (SmartSSD)",
            clock_hz: c::CLOCK_HZ,
            decode_bytes_per_cycle: c::DECODE_BYTES_PER_CYCLE,
            bucketize_elems_per_cycle: c::BUCKETIZE_ELEMS_PER_CYCLE,
            sigridhash_elems_per_cycle: c::SIGRIDHASH_ELEMS_PER_CYCLE,
            log_elems_per_cycle: c::LOG_ELEMS_PER_CYCLE,
            dram_bw: BytesPerSec::new(c::DRAM_BYTES_PER_SEC),
            stage_overhead: Secs::new(c::STAGE_OVERHEAD_SECS),
            feed: FeedPath::P2p,
            ssd: SsdModel::nvme(),
            host_read_bw: BytesPerSec::new(calib::u280::HOST_READ_BYTES_PER_SEC),
            power: Watts::new(c::POWER_W),
            double_buffering: true,
            link_bw_override: None,
        }
    }

    /// The U280 build integrated in the storage node (Sec. VI-C,
    /// "PreSto (U280)"): 2× unit counts, host-staged feed, 225 W.
    #[must_use]
    pub fn u280_in_storage() -> Self {
        let mut m = Self::smartssd();
        m.name = "PreSto (U280)";
        m.decode_bytes_per_cycle *= calib::u280::UNIT_SCALE;
        m.bucketize_elems_per_cycle *= calib::u280::UNIT_SCALE;
        m.sigridhash_elems_per_cycle *= calib::u280::UNIT_SCALE;
        m.log_elems_per_cycle *= calib::u280::UNIT_SCALE;
        // HBM-backed card: ample on-card bandwidth for output assembly.
        m.dram_bw = BytesPerSec::gb(12.0);
        m.feed = FeedPath::HostStaged;
        m.power = Watts::new(calib::u280::POWER_W);
        m
    }

    /// The U280 build deployed in a disaggregated accelerator pool
    /// (Fig. 7(b), "U280"): same fabric, but raw data arrives over the
    /// network.
    #[must_use]
    pub fn u280_disaggregated() -> Self {
        let mut m = Self::u280_in_storage();
        m.name = "U280";
        m.feed = FeedPath::Remote;
        m
    }

    /// Build name as used in the paper's figures.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// How this build is fed raw bytes.
    #[must_use]
    pub fn feed_path(&self) -> FeedPath {
        self.feed
    }

    /// Card power draw.
    #[must_use]
    pub fn power(&self) -> Watts {
        self.power
    }

    /// Scales every unit's rate (PE-count ablation). `scale` multiplies the
    /// decoder's bytes/cycle and each transform unit's elements/cycle.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive scale.
    #[must_use]
    pub fn with_unit_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "unit scale must be positive");
        self.decode_bytes_per_cycle *= scale;
        self.bucketize_elems_per_cycle *= scale;
        self.sigridhash_elems_per_cycle *= scale;
        self.log_elems_per_cycle *= scale;
        self
    }

    /// Overrides the per-stage invocation overhead (dispatch ablation).
    #[must_use]
    pub fn with_stage_overhead(mut self, overhead: Secs) -> Self {
        self.stage_overhead = overhead;
        self
    }

    /// Overrides the feed path (P2P vs host-staged ablation).
    #[must_use]
    pub fn with_feed(mut self, feed: FeedPath) -> Self {
        self.feed = feed;
        self
    }

    /// Disables double buffering: each transform unit's DRAM fetch is no
    /// longer overlapped with compute, so every stage pays its off-chip
    /// traffic explicitly (the Sec. IV-C design-choice ablation).
    #[must_use]
    pub fn without_double_buffering(mut self) -> Self {
        self.double_buffering = false;
        self
    }

    /// Whether double buffering is enabled (default: true).
    #[must_use]
    pub fn double_buffering(&self) -> bool {
        self.double_buffering
    }

    fn unit_rate(&self, elems_per_cycle: f64) -> f64 {
        self.clock_hz * elems_per_cycle
    }

    /// Steady-state throughput of one transform unit, elements/second —
    /// the per-op rate the host/ISP placement cost model prices stages
    /// with.
    #[must_use]
    pub fn unit_elems_per_sec(&self, op: crate::trace::OpKind) -> f64 {
        use crate::trace::OpKind;
        match op {
            OpKind::Bucketize => self.unit_rate(self.bucketize_elems_per_cycle),
            OpKind::SigridHash => self.unit_rate(self.sigridhash_elems_per_cycle),
            OpKind::Log => self.unit_rate(self.log_elems_per_cycle),
        }
    }

    /// Fixed per-stage invocation overhead (XRT kernel dispatch).
    #[must_use]
    pub fn stage_overhead(&self) -> Secs {
        self.stage_overhead
    }

    /// Effective on-card DRAM bandwidth available to data-movement stages.
    #[must_use]
    pub fn dram_bandwidth(&self) -> BytesPerSec {
        self.dram_bw
    }

    /// Host ↔ card boundary-link bandwidth: the rate at which intermediate
    /// stage outputs cross the fleet boundary (split-placement hand-off).
    /// P2P builds move them over the SSD's peer-to-peer path, host-staged
    /// builds over the PCIe staging path, and disaggregated builds over the
    /// datacenter network link.
    #[must_use]
    pub fn link_bandwidth(&self) -> BytesPerSec {
        if let Some(bw) = self.link_bw_override {
            return bw;
        }
        match self.feed {
            FeedPath::P2p => self.ssd.p2p_bandwidth(),
            FeedPath::HostStaged => self.host_read_bw,
            FeedPath::Remote => BytesPerSec::new(calib::net::LINK_GBPS * 1e9 / 8.0),
        }
    }

    /// Overrides the boundary-link bandwidth (hand-off pricing ablation).
    ///
    /// # Panics
    ///
    /// Panics on a non-positive bandwidth.
    #[must_use]
    pub fn with_link_bandwidth(mut self, bw: BytesPerSec) -> Self {
        assert!(bw.raw() > 0.0, "link bandwidth must be positive");
        self.link_bw_override = Some(bw);
        self
    }

    /// Per-unit stage times for one mini-batch (before invocation overhead).
    #[must_use]
    pub fn stage_breakdown(&self, profile: &WorkloadProfile) -> StageBreakdown {
        let extract_read = match self.feed {
            FeedPath::P2p => self.ssd.p2p_time(profile.raw_bytes),
            FeedPath::HostStaged => self.host_read_bw.time_for(profile.raw_bytes),
            // Remote copy-in is priced by the caller's network model.
            FeedPath::Remote => Secs::ZERO,
        };
        let extract_decode =
            Secs::new(profile.raw_bytes as f64 / (self.clock_hz * self.decode_bytes_per_cycle));
        // With double buffering (Sec. IV-C) each unit's DRAM fetch of the
        // next feature chunk overlaps the current chunk's compute; without
        // it the fetch serializes with compute (input read + output write,
        // 8 B per element each way).
        let fetch_penalty = |elements: u64| {
            if self.double_buffering {
                Secs::ZERO
            } else {
                self.dram_bw.time_for(elements * 16)
            }
        };
        let bucketize = Secs::new(
            profile.generated_values as f64 / self.unit_rate(self.bucketize_elems_per_cycle),
        ) + fetch_penalty(profile.generated_values);
        let sigridhash = Secs::new(
            profile.sparse_values as f64 / self.unit_rate(self.sigridhash_elems_per_cycle),
        ) + fetch_penalty(profile.sparse_values);
        let log = Secs::new(profile.dense_values as f64 / self.unit_rate(self.log_elems_per_cycle))
            + fetch_penalty(profile.dense_values);
        // Output assembly writes the train-ready tensors through card DRAM.
        let format = self.dram_bw.time_for(profile.tensor_bytes);
        // Handing buffers to the NIC/host DMA engine.
        let load = self.dram_bw.time_for(profile.tensor_bytes) * 0.25;

        let o = self.stage_overhead;
        StageBreakdown {
            extract_read: extract_read + o,
            extract_decode: extract_decode + o,
            bucketize: bucketize + o,
            sigridhash: sigridhash + o,
            log: log + o,
            format: format + o,
            other: Secs::ZERO,
            load,
        }
    }

    /// Single-batch latency: the batch traverses each unit in turn.
    #[must_use]
    pub fn latency(&self, profile: &WorkloadProfile) -> Secs {
        self.stage_breakdown(profile).total()
    }

    /// Steady-state throughput in samples/second: consecutive batches
    /// pipeline across units, so the slowest unit governs.
    #[must_use]
    pub fn throughput(&self, profile: &WorkloadProfile) -> f64 {
        let b = self.stage_breakdown(profile);
        let bottleneck =
            [b.extract_read, b.extract_decode, b.bucketize, b.sigridhash, b.log, b.format, b.load]
                .into_iter()
                .fold(Secs::ZERO, Secs::max);
        profile.rows as f64 / bottleneck.seconds()
    }
}

/// FPGA resource utilization of one unit (Table II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitResources {
    /// Unit name.
    pub unit: &'static str,
    /// Lookup-table utilization, percent of the device.
    pub lut_pct: f64,
    /// Register utilization, percent.
    pub reg_pct: f64,
    /// Block-RAM utilization, percent.
    pub bram_pct: f64,
    /// UltraRAM utilization, percent.
    pub uram_pct: f64,
    /// DSP-slice utilization, percent.
    pub dsp_pct: f64,
}

/// Table II of the paper: per-unit resource utilization of the SmartSSD
/// build at 223 MHz.
#[must_use]
pub fn table2_resources() -> Vec<UnitResources> {
    vec![
        UnitResources {
            unit: "Decode",
            lut_pct: 18.84,
            reg_pct: 8.49,
            bram_pct: 25.08,
            uram_pct: 0.0,
            dsp_pct: 0.0,
        },
        UnitResources {
            unit: "Bucketize",
            lut_pct: 7.88,
            reg_pct: 4.28,
            bram_pct: 6.19,
            uram_pct: 27.59,
            dsp_pct: 0.0,
        },
        UnitResources {
            unit: "SigridHash",
            lut_pct: 23.11,
            reg_pct: 12.47,
            bram_pct: 11.89,
            uram_pct: 0.0,
            dsp_pct: 19.19,
        },
        UnitResources {
            unit: "Log",
            lut_pct: 4.18,
            reg_pct: 2.79,
            bram_pct: 4.89,
            uram_pct: 0.0,
            dsp_pct: 10.62,
        },
    ]
}

/// Column-wise totals over [`table2_resources`] (the paper's "Total" row).
#[must_use]
pub fn table2_total() -> UnitResources {
    let rows = table2_resources();
    UnitResources {
        unit: "Total",
        lut_pct: rows.iter().map(|r| r.lut_pct).sum(),
        reg_pct: rows.iter().map(|r| r.reg_pct).sum(),
        bram_pct: rows.iter().map(|r| r.bram_pct).sum(),
        uram_pct: rows.iter().map(|r| r.uram_pct).sum(),
        dsp_pct: rows.iter().map(|r| r.dsp_pct).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_datagen::RmConfig;

    fn profile(c: &RmConfig) -> WorkloadProfile {
        WorkloadProfile::from_config(c)
    }

    #[test]
    fn extract_share_near_paper_value() {
        // Paper Sec. VI-A: Extract ≈ 40.8% of PreSto preprocessing time on
        // average. Accept 30–55% per model.
        let isp = IspModel::smartssd();
        for c in RmConfig::all() {
            let frac = isp.stage_breakdown(&profile(&c)).extract_fraction();
            assert!((0.25..=0.60).contains(&frac), "{}: extract {frac:.2}", c.name);
        }
    }

    #[test]
    fn throughput_exceeds_inverse_latency() {
        let isp = IspModel::smartssd();
        for c in RmConfig::all() {
            let p = profile(&c);
            let lat = isp.latency(&p).seconds();
            let tput = isp.throughput(&p);
            assert!(tput > p.rows as f64 / lat, "{}", c.name);
        }
    }

    #[test]
    fn u280_is_faster_than_smartssd() {
        let ssd = IspModel::smartssd();
        let u280 = IspModel::u280_in_storage();
        let p = profile(&RmConfig::rm5());
        assert!(u280.latency(&p) < ssd.latency(&p));
        assert!(u280.throughput(&p) > ssd.throughput(&p));
    }

    #[test]
    fn smartssd_stays_in_u2_power_envelope() {
        assert!(IspModel::smartssd().power().raw() <= 25.0);
        assert!(IspModel::u280_in_storage().power().raw() > 100.0);
    }

    #[test]
    fn remote_feed_excludes_copy_in() {
        let pool = IspModel::u280_disaggregated();
        let local = IspModel::u280_in_storage();
        let p = profile(&RmConfig::rm3());
        assert!(pool.stage_breakdown(&p).extract_read < local.stage_breakdown(&p).extract_read);
        assert_eq!(pool.feed_path(), FeedPath::Remote);
    }

    #[test]
    fn table2_matches_paper() {
        let total = table2_total();
        assert!((total.lut_pct - 54.02).abs() < 0.02, "LUT {}", total.lut_pct);
        assert!((total.reg_pct - 28.03).abs() < 0.02);
        assert!((total.bram_pct - 48.05).abs() < 0.02);
        assert!((total.uram_pct - 27.59).abs() < 0.02);
        assert!((total.dsp_pct - 29.81).abs() < 0.02);
        assert_eq!(table2_resources().len(), 4);
    }

    #[test]
    fn bigger_models_take_longer() {
        let isp = IspModel::smartssd();
        let rm1 = isp.latency(&profile(&RmConfig::rm1()));
        let rm5 = isp.latency(&profile(&RmConfig::rm5()));
        assert!(rm5 > rm1 * 4.0);
    }

    #[test]
    fn unit_scale_speeds_up_compute_stages_only() {
        let p = profile(&RmConfig::rm5());
        let base = IspModel::smartssd();
        let scaled = IspModel::smartssd().with_unit_scale(2.0);
        let b0 = base.stage_breakdown(&p);
        let b1 = scaled.stage_breakdown(&p);
        assert!(b1.sigridhash < b0.sigridhash);
        assert!(b1.extract_decode < b0.extract_decode);
        // P2P feed and format (DRAM-bound) are untouched by PE scaling.
        assert_eq!(b1.extract_read, b0.extract_read);
        assert_eq!(b1.format, b0.format);
    }

    #[test]
    fn disabling_double_buffering_slows_transforms() {
        let p = profile(&RmConfig::rm5());
        let on = IspModel::smartssd();
        let off = IspModel::smartssd().without_double_buffering();
        assert!(on.double_buffering());
        assert!(!off.double_buffering());
        assert!(off.latency(&p) > on.latency(&p));
        assert!(off.throughput(&p) < on.throughput(&p));
        let b_on = on.stage_breakdown(&p);
        let b_off = off.stage_breakdown(&p);
        assert!(b_off.sigridhash > b_on.sigridhash);
        assert_eq!(b_off.extract_decode, b_on.extract_decode);
    }

    #[test]
    fn stage_overhead_dominates_small_models() {
        let p1 = profile(&RmConfig::rm1());
        let fat = IspModel::smartssd().with_stage_overhead(Secs::from_millis(10.0));
        let lean = IspModel::smartssd().with_stage_overhead(Secs::ZERO);
        let ratio = fat.latency(&p1) / lean.latency(&p1);
        assert!(ratio > 3.0, "overhead barely matters? ratio {ratio:.1}");
    }

    #[test]
    fn feed_override_switches_extract_path() {
        let p = profile(&RmConfig::rm3());
        let p2p = IspModel::smartssd();
        let staged = IspModel::smartssd().with_feed(FeedPath::HostStaged);
        assert!(staged.stage_breakdown(&p).extract_read < p2p.stage_breakdown(&p).extract_read);
    }

    #[test]
    fn link_bandwidth_follows_feed_path() {
        let p2p = IspModel::smartssd();
        assert_eq!(p2p.link_bandwidth(), SsdModel::nvme().p2p_bandwidth());
        let staged = IspModel::u280_in_storage();
        assert!((staged.link_bandwidth().raw() - calib::u280::HOST_READ_BYTES_PER_SEC).abs() < 1.0);
        let remote = IspModel::u280_disaggregated();
        assert!((remote.link_bandwidth().raw() - 1.25e9).abs() < 1.0, "10 Gbps in bytes");
        let slow = IspModel::smartssd().with_link_bandwidth(BytesPerSec::new(1.0e6));
        assert!((slow.link_bandwidth().raw() - 1.0e6).abs() < 1.0);
    }

    #[test]
    fn names_match_figure_16_legend() {
        assert_eq!(IspModel::smartssd().name(), "PreSto (SmartSSD)");
        assert_eq!(IspModel::u280_in_storage().name(), "PreSto (U280)");
        assert_eq!(IspModel::u280_disaggregated().name(), "U280");
    }
}
