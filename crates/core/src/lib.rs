//! # presto-core
//!
//! The PreSto system layer of the ISCA 2024 reproduction: everything above
//! the device models and below the benchmark harness.
//!
//! * [`systems::System`] — the four preprocessing architectures the paper
//!   compares (co-located, disaggregated CPU pool, accelerator pools,
//!   PreSto ISP).
//! * [`provision::Provisioner`] — the `⌈T/P⌉` sizing rule (Figs. 4/14).
//! * [`managers`] — the train manager / preprocess manager control flow of
//!   Fig. 9.
//! * [`pipeline`] — the discrete-event producer–consumer simulation behind
//!   GPU-utilization numbers (Fig. 3).
//! * [`placement`] — cost-model-driven host/ISP placement of a compiled
//!   plan's operator stages.
//! * [`fleet::Fleet`] — the unified fleet API: one
//!   [`FleetConfig`](presto_ops::FleetConfig) builder spawns any of the
//!   three streaming executors (host, ISP, split) as an interchangeable
//!   [`pipeline::BatchSource`].
//! * [`service::PreprocessService`] — the multi-tenant preprocessing
//!   service: N concurrent jobs share one device pool under weighted-fair
//!   dispatch with admission control and per-job SLO tracking.
//! * [`experiments`] — one data generator per evaluation figure.
//!
//! ## Example: reproduce the headline comparison on RM5
//!
//! ```
//! use presto_core::systems::System;
//! use presto_datagen::{RmConfig, WorkloadProfile};
//!
//! let profile = WorkloadProfile::from_config(&RmConfig::rm5());
//! let presto = System::presto_smartssd(1);
//! let disagg32 = System::disagg(32);
//! assert!(presto.throughput(&profile) > disagg32.throughput(&profile));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod datacenter;
pub mod experiments;
pub mod failure;
pub mod fleet;
pub mod isp_worker;
pub mod managers;
pub mod pipeline;
pub mod placement;
pub mod provision;
pub mod service;
pub mod split;
pub mod systems;

pub use datacenter::{
    analyze as analyze_contention, measure_throttle, ContentionReport, Fabric, FleetKind,
    MeasuredThrottle,
};
pub use experiments::{isp_vs_cpu_end_to_end, EndToEndPoint};
pub use failure::{simulate_with_failures, FailureEvent, FaultyRunReport, RecoveryPolicy};
pub use fleet::Fleet;
#[allow(deprecated)]
pub use isp_worker::{stream_isp_workers, stream_isp_workers_with};
pub use isp_worker::{IspBatchStream, IspRunStats, IspWorker};
pub use managers::{Backend, EndToEndReport, PreprocessManager, TrainManager, TrainingJob};
pub use pipeline::{
    simulate, simulate_measured, BatchSource, PipelineConfig, PipelineReport, Trainer,
    TrainerConfig, TrainerReport,
};
pub use placement::{place_stages, OpCostModel, Place, PlacementPlan, StagePlacement};
pub use provision::{MeasuredThroughput, Provisioner};
pub use service::{
    AdmissionError, JobHandle, JobReport, JobSpec, JobStatus, PreprocessService, ServiceConfig,
    ServiceReport,
};
pub use split::SplitBatchStream;
#[allow(deprecated)]
pub use split::{stream_split_workers, stream_split_workers_with};
pub use systems::System;
