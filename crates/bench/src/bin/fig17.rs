//! Fig. 17 — sensitivity of Bucketize / SigridHash / Log latency to the
//! number of features (1x / 2x / 4x of the RM5 configuration).

use presto_bench::{banner, print_table};
use presto_core::experiments::fig17;
use presto_metrics::TextTable;

fn main() {
    banner(
        "Fig. 17: op latency vs feature count (RM5 scaled 1x/2x/4x)",
        "Disagg latency grows ~linearly with feature count; PreSto keeps large speedups",
    );
    let points = fig17();
    let mut t = TextTable::new(vec!["op", "features", "Disagg (ms)", "PreSto (ms)", "speedup"]);
    for p in &points {
        t.row(vec![
            p.op.to_string(),
            format!("{}x", p.factor),
            format!("{:.1}", p.disagg.millis()),
            format!("{:.1}", p.presto.millis()),
            format!("{:.0}x", p.speedup),
        ]);
    }
    print_table(&t);
    println!("Shape check: each op's Disagg latency scales with the feature");
    println!("multiplier while PreSto's per-op speedup stays roughly constant —");
    println!("the inter-/intra-feature parallelism argument of Sec. VI-D.");
}
