//! Multi-tenant preprocessing: three training jobs with *different*
//! operator graphs share one device pool through the
//! [`PreprocessService`], each consuming its own [`JobHandle`] exactly as
//! a solo trainer would consume a fleet stream.
//!
//! The tenants deliberately mix everything the service multiplexes:
//!
//! * **rm1-host** — the canonical RM1 pipeline on the host CPU fleet,
//!   weight 1.
//! * **rm3-isp** — the heavier RM3 model on the emulated in-storage
//!   fleet, weight 2 (twice the dispatch share) with a modest goodput SLO.
//! * **rm1-cleaned-split** — the `cleaned` scenario graph (Clamp +
//!   FillMissing dense cleanup) on the hybrid split executor, placed by
//!   the cost model.
//!
//! Each tenant's output is asserted **bit-identical** to its own solo
//! serial run — weighted-fair sharing must be invisible in the data — and
//! the run ends with the rolled-up [`ServiceReport`]: per-job goodput,
//! SLO verdicts, stall share, dispatch gaps, and the pool-wide Jain
//! fairness index.
//!
//! Run with: `cargo run --release --example multi_job`
//! `PRESTO_MULTIJOB_ROWS` / `PRESTO_MULTIJOB_PARTITIONS` /
//! `PRESTO_MULTIJOB_WORKERS` shrink the run (CI uses tiny values).

use presto::core::placement::{place_stages, OpCostModel};
use presto::core::{Fleet, JobSpec, PreprocessService, ServiceConfig};
use presto::datagen::{Dataset, RmConfig};
use presto::hwsim::fpga::IspModel;
use presto::metrics::{percent, TextTable};
use presto::ops::{preprocess_partition, MiniBatch, PlanGraph, PreprocessPlan};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rows = env_usize("PRESTO_MULTIJOB_ROWS", 1024);
    let partitions = env_usize("PRESTO_MULTIJOB_PARTITIONS", 8);
    let pool_workers = env_usize("PRESTO_MULTIJOB_WORKERS", 4);

    let mut rm1 = RmConfig::rm1();
    rm1.batch_size = rows;
    let mut rm3 = RmConfig::rm3();
    rm3.batch_size = rows;

    let rm1_plan = PreprocessPlan::from_config(&rm1, 7)?;
    let rm3_plan = PreprocessPlan::from_config(&rm3, 7)?;
    let cleaned_plan = PreprocessPlan::compile(PlanGraph::cleaned(&rm1, 7)?, &rm1)?;
    let model = OpCostModel::analytic(&IspModel::smartssd());
    let split =
        cleaned_plan.split(&place_stages(&cleaned_plan, rows, &model).fleet_assignment())?;

    let rm1_ds = Dataset::generate(&rm1, partitions, rows, 2, 11)?;
    let rm3_ds = Dataset::generate(&rm3, partitions, rows, 2, 13)?;
    let cleaned_ds = Dataset::generate(&rm1, partitions, rows, 2, 17)?;

    println!(
        "multi-tenant run: 3 jobs x {partitions} partitions x {rows} rows \
         on one {pool_workers}-worker pool\n"
    );

    // Each tenant's solo serial reference: the bit-identity anchor.
    let solo = |plan: &PreprocessPlan, ds: &Dataset| -> Result<Vec<MiniBatch>, _> {
        ds.partitions()
            .iter()
            .map(|p| preprocess_partition(plan, p.blob.clone()).map(|(mb, _)| mb))
            .collect::<Result<_, presto::ops::PreprocessError>>()
    };
    let references =
        [solo(&rm1_plan, &rm1_ds)?, solo(&rm3_plan, &rm3_ds)?, solo(&cleaned_plan, &cleaned_ds)?];

    let service = PreprocessService::new(
        ServiceConfig::new(pool_workers).with_max_active_jobs(3).with_job_capacity(2),
    );
    let specs = vec![
        JobSpec::new("rm1-host", rm1_plan, rm1_ds.partitions().to_vec()),
        JobSpec::new("rm3-isp", rm3_plan, rm3_ds.partitions().to_vec())
            .with_fleet(Fleet::Isp)
            .with_weight(2.0)
            .with_goodput_slo(1.0),
        JobSpec::new("rm1-cleaned-split", cleaned_plan, cleaned_ds.partitions().to_vec())
            .with_fleet(Fleet::Split(split)),
    ];
    let handles: Vec<_> = specs
        .into_iter()
        .map(|spec| service.submit(spec).expect("an idle pool admits all three tenants"))
        .collect();

    // Drain every tenant concurrently, exactly as three trainers would.
    let outputs: Vec<Vec<(usize, MiniBatch)>> = std::thread::scope(|scope| {
        let joins: Vec<_> = handles
            .into_iter()
            .map(|handle| {
                scope.spawn(move || {
                    let mut batches: Vec<(usize, MiniBatch)> = handle
                        .map(|item| item.expect("tenant partition preprocesses"))
                        .map(|b| (b.partition, b.batch))
                        .collect();
                    batches.sort_by_key(|(pos, _)| *pos);
                    batches
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().expect("tenant drains")).collect()
    });
    let report = service.shutdown();

    for (tenant, reference) in outputs.iter().zip(&references) {
        assert_eq!(tenant.len(), reference.len(), "every partition arrives");
        for (pos, batch) in tenant {
            assert_eq!(batch, &reference[*pos], "shared-pool output must match the solo run");
        }
    }
    println!("all 3 tenants bit-identical to their solo serial runs ✓\n");

    let mut table = TextTable::new(vec![
        "job",
        "fleet",
        "status",
        "delivered",
        "goodput",
        "SLO",
        "stall share",
        "max dispatch gap",
    ]);
    for job in &report.jobs {
        table.row(vec![
            job.name.clone(),
            job.fleet.clone(),
            format!("{:?}", job.status),
            format!("{}/{}", job.delivered, job.partitions),
            format!("{:.0} rows/s", job.goodput_rows_per_sec),
            match job.slo_met {
                Some(true) => "met".into(),
                Some(false) => "MISSED".into(),
                None => "-".into(),
            },
            percent(job.stall_share),
            format!("{:.1}ms", job.max_dispatch_gap.as_secs_f64() * 1e3),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!(
        "pool: {} workers, elapsed {:.1}ms, Jain fairness {:.3}, max starvation {:.1}ms",
        report.pool_workers,
        report.elapsed.as_secs_f64() * 1e3,
        report.fairness,
        report.max_starvation().as_secs_f64() * 1e3
    );
    println!();
    println!("One pool, three graphs, three fleets: the weighted-fair dispatcher");
    println!("interleaves partitions so no tenant starves, and recovery state is");
    println!("tracked per job — a device quarantine degrades only its owner.");
    Ok(())
}
