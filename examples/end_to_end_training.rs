//! End-to-end training run: the Fig. 9 control flow of the paper.
//!
//! The train manager measures the GPUs' demand, the preprocess manager
//! provisions `⌈T/P⌉` devices, and the discrete-event pipeline simulation
//! plays out the producer–consumer loop — once with the Disagg baseline,
//! once with PreSto SmartSSDs.
//!
//! Run with: `cargo run --example end_to_end_training`

use presto::core::{Backend, PreprocessManager, TrainManager, TrainingJob};
use presto::datagen::RmConfig;
use presto::metrics::{percent, samples_per_sec, TextTable};

fn main() {
    let job = TrainingJob { config: RmConfig::rm5(), num_gpus: 8, batches: 96 };
    let train_manager = TrainManager::new();

    println!(
        "training job: {} on {} GPUs, {} mini-batches of {}",
        job.config.name, job.num_gpus, job.batches, job.config.batch_size
    );
    let demand = train_manager.measure_training_demand(&job);
    println!("stress-tested training demand T = {} samples/s\n", samples_per_sec(demand));

    let mut table = TextTable::new(vec![
        "backend",
        "devices",
        "per-device P (samples/s)",
        "GPU utilization",
        "training throughput",
    ]);
    for backend in [Backend::DisaggCpu, Backend::PrestoSmartSsd, Backend::PrestoU280] {
        let manager = PreprocessManager::new(backend);
        let report = train_manager.launch(&job, &manager);
        table.row(vec![
            report.provision.system.name(),
            report.provision.devices.to_string(),
            samples_per_sec(report.provision.per_device_throughput),
            percent(report.pipeline.gpu_utilization),
            samples_per_sec(report.pipeline.training_throughput),
        ]);
    }
    print!("{}", table.render());

    println!();
    println!("Both backends sustain the same training throughput — the paper's");
    println!("premise for comparing them purely on power and cost (Fig. 15) —");
    println!("but PreSto does it with single-digit devices instead of hundreds");
    println!("of CPU cores.");
}
