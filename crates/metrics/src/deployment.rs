//! Deployment-scale fleet descriptions: what hardware each preprocessing
//! system needs to feed a multi-GPU training node, and what it costs.
//!
//! Follows the paper's Section V-C methodology: both systems include the
//! storage node hosting the raw data; Disagg adds CPU server nodes (and
//! plain SSDs for capacity parity), PreSto swaps the SSDs for SmartSSDs.

use presto_core::provision::Provisioner;
use presto_datagen::RmConfig;
use presto_hwsim::calib::{capex, node_power};
use presto_hwsim::power::CpuNodePower;
use presto_hwsim::units::Watts;

/// A sized preprocessing deployment for one training job.
#[derive(Debug, Clone, PartialEq)]
pub struct Deployment {
    /// Human-readable system name.
    pub name: String,
    /// CPU cores allocated (Disagg only).
    pub cpu_cores: usize,
    /// CPU server nodes purchased.
    pub cpu_nodes: usize,
    /// SmartSSD cards purchased (PreSto only).
    pub smartssd_cards: usize,
    /// Plain SSDs purchased (Disagg's storage, capacity-matched).
    pub plain_ssds: usize,
    /// One-time capital expenditure, USD.
    pub capex_usd: f64,
    /// Steady-state power draw, watts.
    pub power: Watts,
}

impl Deployment {
    /// The Disagg deployment feeding `num_gpus` A100s on `config`.
    #[must_use]
    pub fn disagg(provisioner: &Provisioner, config: &RmConfig, num_gpus: usize) -> Self {
        let cores = provisioner.cpu_cores_required(config, num_gpus);
        let units = provisioner.isp_units_required(config, num_gpus);
        let node = CpuNodePower::xeon_node();
        let nodes = node.nodes_for(cores);
        // Capacity parity: as many plain SSDs as PreSto would use SmartSSDs.
        let plain_ssds = units;
        let capex_usd = nodes as f64 * capex::CPU_NODE_USD
            + capex::CPU_NODE_USD // the storage node itself
            + plain_ssds as f64 * capex::PLAIN_SSD_USD;
        let power = Watts::new(node_power::STORAGE_NODE_W) + node.fleet_power(cores);
        Deployment {
            name: format!("Disagg({cores})"),
            cpu_cores: cores,
            cpu_nodes: nodes,
            smartssd_cards: 0,
            plain_ssds,
            capex_usd,
            power,
        }
    }

    /// The PreSto deployment feeding `num_gpus` A100s on `config`.
    #[must_use]
    pub fn presto(provisioner: &Provisioner, config: &RmConfig, num_gpus: usize) -> Self {
        let units = provisioner.isp_units_required(config, num_gpus);
        let capex_usd = capex::CPU_NODE_USD + units as f64 * capex::SMARTSSD_USD;
        let power =
            Watts::new(node_power::STORAGE_NODE_W) + provisioner.isp().power() * units as f64;
        Deployment {
            name: format!("PreSto({units})"),
            cpu_cores: 0,
            cpu_nodes: 0,
            smartssd_cards: units,
            plain_ssds: 0,
            capex_usd,
            power,
        }
    }

    /// Operating expenditure over the depreciation horizon, USD
    /// (`Power × Duration × Electricity`, Sec. V-C).
    #[must_use]
    pub fn opex_usd(&self) -> f64 {
        let hours = capex::DURATION_YEARS * 365.0 * 24.0;
        (self.power.raw() / 1000.0) * hours * capex::ELECTRICITY_USD_PER_KWH
    }

    /// CapEx + OpEx, the denominator of the cost-efficiency metric.
    #[must_use]
    pub fn total_cost_usd(&self) -> f64 {
        self.capex_usd + self.opex_usd()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rm5_deployments_match_paper_scale() {
        let p = Provisioner::poc();
        let disagg = Deployment::disagg(&p, &RmConfig::rm5(), 8);
        let presto = Deployment::presto(&p, &RmConfig::rm5(), 8);
        assert!((9..=14).contains(&disagg.cpu_nodes), "nodes {}", disagg.cpu_nodes);
        assert!((4..=12).contains(&presto.smartssd_cards), "cards {}", presto.smartssd_cards);
        assert!(disagg.power.raw() > 8.0 * presto.power.raw());
        assert!(disagg.total_cost_usd() > 3.0 * presto.total_cost_usd());
    }

    #[test]
    fn opex_formula_matches_section_5c() {
        let d = Deployment {
            name: "test".into(),
            cpu_cores: 0,
            cpu_nodes: 0,
            smartssd_cards: 0,
            plain_ssds: 0,
            capex_usd: 0.0,
            power: Watts::new(1000.0),
        };
        // 1 kW for 3 years at $0.0733/kWh.
        let expected = 3.0 * 365.0 * 24.0 * 0.0733;
        assert!((d.opex_usd() - expected).abs() < 1e-6);
        assert_eq!(d.total_cost_usd(), d.opex_usd());
    }

    #[test]
    fn presto_capex_is_storage_node_plus_cards() {
        let p = Provisioner::poc();
        let presto = Deployment::presto(&p, &RmConfig::rm1(), 8);
        let expected = capex::CPU_NODE_USD + presto.smartssd_cards as f64 * capex::SMARTSSD_USD;
        assert!((presto.capex_usd - expected).abs() < 1e-9);
    }

    #[test]
    fn smaller_models_need_smaller_fleets() {
        let p = Provisioner::poc();
        let rm1 = Deployment::disagg(&p, &RmConfig::rm1(), 8);
        let rm5 = Deployment::disagg(&p, &RmConfig::rm5(), 8);
        assert!(rm1.cpu_nodes < rm5.cpu_nodes);
        assert!(rm1.total_cost_usd() < rm5.total_cost_usd());
    }
}
