//! Delta encoding for integer sequences.
//!
//! Stores the first value verbatim, then zigzag-varint deltas. Monotonic or
//! slowly-varying sequences (list offsets, timestamps, row ids) compress to a
//! byte or two per value.

use super::varint;
use crate::error::Result;

/// Encodes `values` as first-value + zigzag deltas, appending to `out`.
pub fn encode_i64(values: &[i64], out: &mut Vec<u8>) {
    varint::write_u64(out, values.len() as u64);
    let mut prev = 0i64;
    for (i, &v) in values.iter().enumerate() {
        if i == 0 {
            varint::write_i64(out, v);
        } else {
            varint::write_i64(out, v.wrapping_sub(prev));
        }
        prev = v;
    }
}

/// Decodes a stream produced by [`encode_i64`].
///
/// Preallocation is clamped to the bytes remaining in `buf`: every encoded
/// delta occupies at least one byte, so a corrupt leading count can never
/// reserve more memory than the input could legitimately describe.
///
/// # Errors
///
/// Propagates varint decode errors on truncated or corrupt input.
pub fn decode_i64(buf: &[u8], pos: &mut usize) -> Result<Vec<i64>> {
    let count = varint::read_u64(buf, pos)? as usize;
    if count > super::MAX_PAGE_ELEMENTS {
        return Err(crate::ColumnarError::CorruptFile {
            detail: format!("delta stream declares {count} values"),
        });
    }
    let mut values = Vec::with_capacity(count.min(buf.len().saturating_sub(*pos)));
    decode_values(buf, pos, count, &mut values)?;
    Ok(values)
}

/// Like [`decode_i64`], appending `expected` values to a caller-owned
/// buffer. The stream's own count must equal `expected` (known to the
/// caller from the page header), checked before any allocation.
///
/// # Errors
///
/// Returns [`crate::ColumnarError::CountMismatch`] when the stream count
/// disagrees with `expected`, plus any varint decode error.
pub fn decode_i64_into(
    buf: &[u8],
    pos: &mut usize,
    expected: usize,
    out: &mut Vec<i64>,
) -> Result<()> {
    let count = varint::read_u64(buf, pos)? as usize;
    if count != expected {
        return Err(crate::ColumnarError::CountMismatch { declared: expected, actual: count });
    }
    out.reserve(count);
    decode_values(buf, pos, count, out)
}

/// Like [`decode_i64_into`], materializing only the elements covered by
/// `ranges` (sorted, non-overlapping, half-open element-index intervals) —
/// the prefix-pushdown path. The varint delta stream is inherently
/// sequential, so skipped elements are still decoded to carry the running
/// value forward, but they are never stored; the decode hard-stops at the
/// end of the last range instead of walking the page tail. The stream count
/// is validated against `expected` before any allocation.
///
/// # Errors
///
/// Same as [`decode_i64_into`], plus [`crate::ColumnarError::CorruptFile`]
/// when a range exceeds `expected`.
pub fn decode_i64_ranges(
    buf: &[u8],
    pos: &mut usize,
    expected: usize,
    ranges: &[(usize, usize)],
    out: &mut Vec<i64>,
) -> Result<()> {
    let count = varint::read_u64(buf, pos)? as usize;
    if count != expected {
        return Err(crate::ColumnarError::CountMismatch { declared: expected, actual: count });
    }
    let need = super::validate_ranges(ranges, count)?;
    if count == 0 || need == 0 {
        return Ok(());
    }
    out.reserve(need);
    let last_needed = ranges.last().map_or(0, |&(_, stop)| stop);
    let mut prev = varint::read_i64(buf, pos)?;
    let mut ranges = ranges.iter().copied().peekable();
    let mut idx = 0usize; // element index of `prev`
    if let Some(&(start, stop)) = ranges.peek() {
        if start == 0 && stop > 0 {
            out.push(prev);
        }
    }
    let mut raw = [0u64; 64];
    let mut decoded = [0i64; 64];
    while idx + 1 < last_needed {
        let take = (last_needed - (idx + 1)).min(64).min(count - 1 - idx);
        varint::read_u64_group(buf, pos, &mut raw[..take])?;
        for (d, &r) in decoded.iter_mut().zip(&raw[..take]) {
            prev = prev.wrapping_add(varint::zigzag_decode(r));
            *d = prev;
        }
        // Gather the in-range overlap of this group of elements
        // [idx + 1, idx + 1 + take).
        let lo = idx + 1;
        let hi = lo + take;
        while let Some(&(start, stop)) = ranges.peek() {
            if start >= hi {
                break;
            }
            let s = start.max(lo);
            let e = stop.min(hi);
            if s < e {
                out.extend_from_slice(&decoded[s - lo..e - lo]);
            }
            if stop <= hi {
                let _ = ranges.next();
            } else {
                break;
            }
        }
        idx += take;
    }
    Ok(())
}

/// Shared decode core: first value, then zigzag deltas in batches of 64
/// through the byte-sliced group decoder ([`varint::read_u64_group`]).
fn decode_values(buf: &[u8], pos: &mut usize, count: usize, out: &mut Vec<i64>) -> Result<()> {
    if count == 0 {
        return Ok(());
    }
    let mut prev = varint::read_i64(buf, pos)?;
    out.push(prev);
    let mut remaining = count - 1;
    let mut raw = [0u64; 64];
    let mut decoded = [0i64; 64];
    while remaining > 0 {
        let take = remaining.min(64);
        varint::read_u64_group(buf, pos, &mut raw[..take])?;
        for (d, &r) in decoded.iter_mut().zip(&raw[..take]) {
            prev = prev.wrapping_add(varint::zigzag_decode(r));
            *d = prev;
        }
        out.extend_from_slice(&decoded[..take]);
        remaining -= take;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[i64]) -> usize {
        let mut buf = Vec::new();
        encode_i64(values, &mut buf);
        let mut pos = 0;
        assert_eq!(decode_i64(&buf, &mut pos).unwrap(), values);
        assert_eq!(pos, buf.len());
        buf.len()
    }

    #[test]
    fn empty_roundtrips() {
        assert_eq!(roundtrip(&[]), 1);
    }

    #[test]
    fn monotonic_offsets_compress_well() {
        // Typical sparse-feature offsets: +20 average step.
        let values: Vec<i64> = (0..4096).map(|i| i * 20).collect();
        let len = roundtrip(&values);
        assert!(len < values.len() * 2, "offsets took {len} bytes");
    }

    #[test]
    fn constant_sequence_is_one_byte_per_delta() {
        let values = vec![1_000_000i64; 100];
        let len = roundtrip(&values);
        // count + first value + 99 zero deltas.
        assert!(len <= 1 + 4 + 99);
    }

    #[test]
    fn extremes_roundtrip_via_wrapping() {
        roundtrip(&[i64::MIN, i64::MAX, 0, -1, 1, i64::MAX, i64::MIN]);
    }

    #[test]
    fn random_walk_roundtrips() {
        let mut v = 0i64;
        let values: Vec<i64> = (0..1000)
            .map(|i| {
                v = v.wrapping_add(if i % 3 == 0 { -7 } else { 13 });
                v
            })
            .collect();
        roundtrip(&values);
    }

    #[test]
    fn truncation_is_an_error() {
        let mut buf = Vec::new();
        encode_i64(&[1, 2, 3], &mut buf);
        buf.pop();
        let mut pos = 0;
        assert!(decode_i64(&buf, &mut pos).is_err());
    }

    #[test]
    fn corrupt_count_cannot_over_reserve() {
        // A 10-byte varint claiming u64::MAX values followed by nothing:
        // preallocation is clamped to the remaining input, and the decode
        // then fails on truncation instead of allocating terabytes.
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, u64::MAX);
        let mut pos = 0;
        let err = decode_i64(&buf, &mut pos);
        assert!(err.is_err());
    }

    #[test]
    fn decode_into_checks_expected_count_first() {
        let mut buf = Vec::new();
        encode_i64(&[5, 6, 7], &mut buf);
        let mut out = Vec::new();
        let mut pos = 0;
        assert!(decode_i64_into(&buf, &mut pos, 2, &mut out).is_err());
        assert!(out.is_empty());
        let mut pos = 0;
        decode_i64_into(&buf, &mut pos, 3, &mut out).unwrap();
        assert_eq!(out, vec![5, 6, 7]);
    }

    #[test]
    fn long_streams_roundtrip_across_group_boundaries() {
        for n in [63usize, 64, 65, 128, 129, 1000] {
            let values: Vec<i64> = (0..n as i64).map(|i| i * 37 - 400).collect();
            roundtrip(&values);
        }
    }
}
