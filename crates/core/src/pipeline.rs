//! End-to-end training-pipeline simulation (Fig. 9's producer–consumer
//! loop), driven by the discrete-event engine.
//!
//! Preprocessing workers independently produce mini-batches into the train
//! manager's bounded input queue; the GPU trainer consumes them. The
//! simulation reports GPU utilization, queue occupancy and makespan — the
//! quantities behind Fig. 3.
//!
//! Two arrival models drive the producer side:
//!
//! * [`simulate`] — the analytic model: every worker produces at its
//!   steady-state per-worker throughput ([`System::per_worker_throughput`]).
//! * [`simulate_measured`] — the calibration hook: replay a *measured*
//!   inter-arrival process, e.g. the consumer-side gaps recorded from a
//!   real `presto_ops::stream::BatchStream` run, so the simulated trainer
//!   is driven by the executor actually built in this repo rather than an
//!   idealized rate.

use presto_datagen::{RmConfig, WorkloadProfile};
use presto_hwsim::event::EventQueue;
use presto_hwsim::gpu::GpuTrainModel;
use presto_hwsim::units::Secs;
use std::time::Duration;

use crate::systems::System;

/// Configuration of one simulated run.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Mini-batches to train before stopping.
    pub batches: usize,
    /// Input-queue capacity (mini-batches); producers stall when full.
    pub queue_capacity: usize,
    /// Number of GPUs consuming batches.
    pub num_gpus: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig { batches: 64, queue_capacity: 8, num_gpus: 1 }
    }
}

/// Result of a simulated run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineReport {
    /// Total simulated wall-clock time.
    pub makespan: Secs,
    /// Time the GPUs spent actually training.
    pub gpu_busy: Secs,
    /// GPU utilization in `[0, 1]` (busy time over `num_gpus × makespan`).
    pub gpu_utilization: f64,
    /// Mini-batches trained.
    pub batches_trained: usize,
    /// Effective end-to-end training throughput, samples/sec.
    pub training_throughput: f64,
    /// Peak input-queue occupancy observed.
    pub peak_queue: usize,
}

#[derive(Debug)]
enum Event {
    /// A preprocessing worker finished a mini-batch.
    BatchReady { worker: usize },
    /// A GPU finished training a mini-batch.
    GpuDone { gpu: usize },
}

/// Simulates `config.batches` mini-batches flowing through `system` into
/// `gpu` trainers.
///
/// Producers are modeled at their steady-state per-worker throughput;
/// trainers at their per-step time. The bounded queue applies back-pressure:
/// a worker with a ready batch waits for space before starting its next one.
#[must_use]
pub fn simulate(
    system: &System,
    gpu: &GpuTrainModel,
    model: &RmConfig,
    config: &PipelineConfig,
) -> PipelineReport {
    let profile = WorkloadProfile::from_config(model);
    let workers = system.parallelism().max(1);
    let per_worker = system.per_worker_throughput(&profile);
    let batch_interval = Secs::new(profile.rows as f64 / per_worker);
    let step_time = gpu.step_time(model);
    let num_gpus = config.num_gpus.max(1);

    let mut queue: usize = 0; // ready batches waiting for a GPU
    let mut started = 0usize; // batches whose production has begun
    let mut trained = 0usize;
    // Workers holding a finished batch because the queue is full
    // (a producer blocks on its push, as in the real input queue).
    let mut blocked_workers: Vec<usize> = Vec::new();
    let mut idle_gpus: Vec<usize> = (0..num_gpus).collect();
    let mut gpu_busy = Secs::ZERO;
    let mut peak_queue = 0usize;
    let mut first_arrival: Option<Secs> = None;

    let mut events: EventQueue<Event> = EventQueue::new();
    // Kick off the first wave of production. Workers are staggered across
    // one batch interval, as a running fleet would be — without this the
    // simulation produces artificial arrival bursts.
    for worker in 0..workers {
        if started < config.batches {
            started += 1;
            let offset = batch_interval * (worker as f64 / workers as f64);
            events.schedule_after(batch_interval + offset, Event::BatchReady { worker });
        }
    }

    let start_next = |events: &mut EventQueue<Event>, started: &mut usize, worker: usize| {
        if *started < config.batches {
            *started += 1;
            events.schedule_after(batch_interval, Event::BatchReady { worker });
        }
    };

    while let Some((now, event)) = events.pop() {
        match event {
            Event::BatchReady { worker } => {
                first_arrival.get_or_insert(now);
                if let Some(gpu_id) = idle_gpus.pop() {
                    // Hand straight to an idle GPU, bypassing the queue.
                    gpu_busy += step_time;
                    events.schedule_after(step_time, Event::GpuDone { gpu: gpu_id });
                    start_next(&mut events, &mut started, worker);
                } else if queue < config.queue_capacity {
                    queue += 1;
                    peak_queue = peak_queue.max(queue);
                    start_next(&mut events, &mut started, worker);
                } else {
                    // Queue full: the worker blocks holding its batch.
                    blocked_workers.push(worker);
                }
            }
            Event::GpuDone { gpu: gpu_id } => {
                trained += 1;
                if queue > 0 {
                    queue -= 1;
                    gpu_busy += step_time;
                    events.schedule_after(step_time, Event::GpuDone { gpu: gpu_id });
                    // Space freed: one blocked worker delivers and resumes.
                    if let Some(worker) = blocked_workers.pop() {
                        queue += 1;
                        start_next(&mut events, &mut started, worker);
                    }
                } else if let Some(worker) = blocked_workers.pop() {
                    // Zero-capacity queue: hand the held batch over directly.
                    gpu_busy += step_time;
                    events.schedule_after(step_time, Event::GpuDone { gpu: gpu_id });
                    start_next(&mut events, &mut started, worker);
                } else {
                    idle_gpus.push(gpu_id);
                }
            }
        }
        if trained >= config.batches {
            break;
        }
    }

    let makespan = events.now();
    // Utilization and throughput are measured over the steady window from
    // the first batch arrival (the paper measures a running pipeline, not
    // cold start).
    let window = match first_arrival {
        Some(t) if makespan > t => makespan - t,
        _ => makespan,
    };
    let denom = window.seconds() * num_gpus as f64;
    PipelineReport {
        makespan,
        gpu_busy,
        gpu_utilization: if denom == 0.0 { 0.0 } else { (gpu_busy.seconds() / denom).min(1.0) },
        batches_trained: trained,
        training_throughput: trained as f64 * profile.rows as f64 / window.seconds().max(1e-12),
        peak_queue,
    }
}

/// Simulates `config.batches` mini-batches arriving with the *measured*
/// inter-arrival gaps `inter_arrivals` (replayed cyclically when the run is
/// longer than the recording) flowing into `gpu` trainers.
///
/// The measured process already folds in worker parallelism, Extract
/// overlap and device contention, so it is modeled as one aggregated
/// producer; the bounded queue still applies back-pressure — when it is
/// full the producer holds its batch and the remaining arrivals shift
/// later, exactly like a blocked `send` on the real output channel.
///
/// An empty `inter_arrivals` means "instant arrivals" (a producer that is
/// never the bottleneck).
#[must_use]
pub fn simulate_measured(
    inter_arrivals: &[Duration],
    gpu: &GpuTrainModel,
    model: &RmConfig,
    config: &PipelineConfig,
) -> PipelineReport {
    let profile = WorkloadProfile::from_config(model);
    let step_time = gpu.step_time(model);
    let num_gpus = config.num_gpus.max(1);
    let gaps: Vec<Secs> = if inter_arrivals.is_empty() {
        vec![Secs::ZERO]
    } else {
        inter_arrivals.iter().map(|d| Secs::new(d.as_secs_f64())).collect()
    };

    let mut queue: usize = 0;
    let mut started = 0usize;
    let mut trained = 0usize;
    // The producer holding a finished batch because the queue is full.
    let mut producer_blocked = false;
    let mut idle_gpus: Vec<usize> = (0..num_gpus).collect();
    let mut gpu_busy = Secs::ZERO;
    let mut peak_queue = 0usize;
    let mut first_arrival: Option<Secs> = None;

    let mut events: EventQueue<Event> = EventQueue::new();
    if config.batches > 0 {
        started = 1;
        events.schedule_after(gaps[0], Event::BatchReady { worker: 0 });
    }

    let start_next = |events: &mut EventQueue<Event>, started: &mut usize| {
        if *started < config.batches {
            let gap = gaps[*started % gaps.len()];
            *started += 1;
            events.schedule_after(gap, Event::BatchReady { worker: 0 });
        }
    };

    while let Some((now, event)) = events.pop() {
        match event {
            Event::BatchReady { .. } => {
                first_arrival.get_or_insert(now);
                if let Some(gpu_id) = idle_gpus.pop() {
                    gpu_busy += step_time;
                    events.schedule_after(step_time, Event::GpuDone { gpu: gpu_id });
                    start_next(&mut events, &mut started);
                } else if queue < config.queue_capacity {
                    queue += 1;
                    peak_queue = peak_queue.max(queue);
                    start_next(&mut events, &mut started);
                } else {
                    producer_blocked = true;
                }
            }
            Event::GpuDone { gpu: gpu_id } => {
                trained += 1;
                if queue > 0 {
                    queue -= 1;
                    gpu_busy += step_time;
                    events.schedule_after(step_time, Event::GpuDone { gpu: gpu_id });
                    if producer_blocked {
                        queue += 1;
                        producer_blocked = false;
                        start_next(&mut events, &mut started);
                    }
                } else if producer_blocked {
                    gpu_busy += step_time;
                    events.schedule_after(step_time, Event::GpuDone { gpu: gpu_id });
                    producer_blocked = false;
                    start_next(&mut events, &mut started);
                } else {
                    idle_gpus.push(gpu_id);
                }
            }
        }
        if trained >= config.batches {
            break;
        }
    }

    let makespan = events.now();
    let window = match first_arrival {
        Some(t) if makespan > t => makespan - t,
        _ => makespan,
    };
    let denom = window.seconds() * num_gpus as f64;
    PipelineReport {
        makespan,
        gpu_busy,
        gpu_utilization: if denom == 0.0 { 0.0 } else { (gpu_busy.seconds() / denom).min(1.0) },
        batches_trained: trained,
        training_throughput: trained as f64 * profile.rows as f64 / window.seconds().max(1e-12),
        peak_queue,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(system: &System, batches: usize) -> PipelineReport {
        let gpu = GpuTrainModel::a100();
        simulate(
            system,
            &gpu,
            &RmConfig::rm5(),
            &PipelineConfig { batches, queue_capacity: 8, num_gpus: 1 },
        )
    }

    #[test]
    fn starved_gpu_has_low_utilization() {
        // 16 co-located workers on RM5: the Fig. 3 situation (< 20% util).
        let report = run(&System::colocated(16), 48);
        assert!(
            report.gpu_utilization < 0.25,
            "colocated(16) utilization {:.2}",
            report.gpu_utilization
        );
        assert_eq!(report.batches_trained, 48);
    }

    #[test]
    fn provisioned_fleet_saturates_gpu() {
        // Enough Disagg cores to exceed demand: utilization near 1.
        let report = run(&System::disagg(400), 48);
        assert!(report.gpu_utilization > 0.9, "utilization {:.2}", report.gpu_utilization);
    }

    #[test]
    fn more_workers_never_hurt() {
        let a = run(&System::disagg(16), 32).training_throughput;
        let b = run(&System::disagg(64), 32).training_throughput;
        let c = run(&System::disagg(256), 32).training_throughput;
        assert!(b > a);
        assert!(c >= b * 0.99);
    }

    #[test]
    fn queue_respects_capacity() {
        let gpu = GpuTrainModel::a100();
        let report = simulate(
            &System::disagg(512),
            &gpu,
            &RmConfig::rm5(),
            &PipelineConfig { batches: 64, queue_capacity: 4, num_gpus: 1 },
        );
        assert!(report.peak_queue <= 4 + 1, "peak queue {}", report.peak_queue);
    }

    #[test]
    fn training_throughput_capped_by_gpu() {
        let gpu = GpuTrainModel::a100();
        let max = gpu.max_throughput(&RmConfig::rm5());
        let report = run(&System::disagg(1024), 64);
        assert!(report.training_throughput <= max * 1.01);
        assert!(report.training_throughput > max * 0.8);
    }

    #[test]
    fn multi_gpu_needs_proportional_supply() {
        let gpu = GpuTrainModel::a100();
        let single = simulate(
            &System::presto_smartssd(2),
            &gpu,
            &RmConfig::rm5(),
            &PipelineConfig { batches: 64, queue_capacity: 8, num_gpus: 1 },
        );
        let eight = simulate(
            &System::presto_smartssd(2),
            &gpu,
            &RmConfig::rm5(),
            &PipelineConfig { batches: 64, queue_capacity: 8, num_gpus: 8 },
        );
        assert!(eight.gpu_utilization < single.gpu_utilization);
    }

    #[test]
    fn measured_fast_arrivals_saturate_the_gpu() {
        let gpu = GpuTrainModel::a100();
        let step = gpu.step_time(&RmConfig::rm1()).seconds();
        // Arrivals 50x faster than training: the GPU is the bottleneck.
        let gaps = vec![Duration::from_secs_f64(step / 50.0); 16];
        let report = simulate_measured(
            &gaps,
            &gpu,
            &RmConfig::rm1(),
            &PipelineConfig { batches: 128, queue_capacity: 8, num_gpus: 1 },
        );
        assert_eq!(report.batches_trained, 128);
        assert!(report.gpu_utilization > 0.95, "utilization {:.3}", report.gpu_utilization);
        assert!(report.peak_queue <= 8, "peak queue {}", report.peak_queue);
    }

    #[test]
    fn measured_slow_arrivals_starve_the_gpu_proportionally() {
        let gpu = GpuTrainModel::a100();
        let step = gpu.step_time(&RmConfig::rm1()).seconds();
        // One batch every 4 step-times: utilization must settle near 25%.
        let gaps = vec![Duration::from_secs_f64(step * 4.0)];
        let report = simulate_measured(
            &gaps,
            &gpu,
            &RmConfig::rm1(),
            &PipelineConfig { batches: 64, queue_capacity: 8, num_gpus: 1 },
        );
        assert!(
            (report.gpu_utilization - 0.25).abs() < 0.05,
            "utilization {:.3}",
            report.gpu_utilization
        );
    }

    #[test]
    fn measured_replay_cycles_and_respects_capacity() {
        let gpu = GpuTrainModel::a100();
        // Bursty trace shorter than the run: two instant arrivals then a
        // long silence, replayed cyclically through a capacity-2 queue.
        let step = gpu.step_time(&RmConfig::rm1()).seconds();
        let gaps = [0.0, 0.0, step * 3.0].map(Duration::from_secs_f64);
        let report = simulate_measured(
            &gaps,
            &gpu,
            &RmConfig::rm1(),
            &PipelineConfig { batches: 32, queue_capacity: 2, num_gpus: 1 },
        );
        assert_eq!(report.batches_trained, 32);
        assert!(report.peak_queue <= 2, "peak queue {}", report.peak_queue);
        assert!(report.training_throughput > 0.0);
    }

    #[test]
    fn measured_empty_trace_means_instant_supply() {
        let gpu = GpuTrainModel::a100();
        let report = simulate_measured(
            &[],
            &gpu,
            &RmConfig::rm1(),
            &PipelineConfig { batches: 16, queue_capacity: 4, num_gpus: 1 },
        );
        assert_eq!(report.batches_trained, 16);
        assert!(report.gpu_utilization > 0.99, "utilization {:.3}", report.gpu_utilization);
    }

    #[test]
    fn zero_batches_terminate() {
        let gpu = GpuTrainModel::a100();
        let report = simulate(
            &System::disagg(4),
            &gpu,
            &RmConfig::rm1(),
            &PipelineConfig { batches: 0, queue_capacity: 4, num_gpus: 1 },
        );
        assert_eq!(report.batches_trained, 0);
    }
}
