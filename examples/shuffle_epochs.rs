//! Shuffled-epoch streaming over `PSTOCOL4` row groups: deterministic
//! permutations, mid-epoch resume, and the group-size trade-off.
//!
//! Part 1 (epochs): the same grouped dataset is streamed for three epochs
//! of one seed. Each epoch draws a fresh permutation of all row groups;
//! the same `(seed, epoch)` always draws the same one, so the delivered
//! order is reproducible across runs and worker counts.
//!
//! Part 2 (resume): an epoch is interrupted mid-stream, its
//! [`EpochCursor`] is serialized to a string, and a fresh stream resumes
//! from it. The example asserts the stitched run is bit-identical to an
//! uninterrupted epoch — the checkpoint/restart contract.
//!
//! Part 3 (group-size sweep): the same rows are written at several
//! rows-per-group settings, and the bytes one shuffled epoch actually
//! reads are summed from each file's row-group index. Small groups
//! approach a uniform row-level shuffle but multiply footer entries,
//! ranged reads, and stored bytes (chunk headers and encoder restarts —
//! measured read amplification); whole-partition groups read sequentially
//! but only permute partition order. Sizing groups at the training
//! mini-batch is the standard compromise: batches are drawn uniformly
//! while each read stays one contiguous ranged access per column.
//!
//! Run with: `cargo run --release --example shuffle_epochs`
//!
//! Environment knobs (for CI and quick runs):
//! * `PRESTO_SHUFFLE_PARTITIONS` — partitions to generate (default 6)
//! * `PRESTO_SHUFFLE_ROWS` — rows per partition (default 1024)
//! * `PRESTO_SHUFFLE_SEED` — shuffle seed (default 42)

use presto::columnar::FileReader;
use presto::datagen::{Dataset, RmConfig};
use presto::metrics::TextTable;
use presto::ops::{
    epoch_units, EpochCursor, FleetConfig, PreprocessPlan, ShuffleSpec, ShuffledStream,
};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let num_partitions = env_usize("PRESTO_SHUFFLE_PARTITIONS", 6);
    let rows = env_usize("PRESTO_SHUFFLE_ROWS", 1024);
    let seed = env_u64("PRESTO_SHUFFLE_SEED", 42);
    let group_rows = (rows / 4).max(1);

    let mut config = RmConfig::rm1();
    config.batch_size = group_rows;
    let plan = PreprocessPlan::from_config(&config, 1)?;
    let ds = Dataset::generate_grouped(&config, num_partitions, rows, 2, 7, group_rows)?;
    let units = epoch_units(ds.partitions())?;
    println!(
        "dataset: {num_partitions} partitions x {rows} rows, {group_rows} rows/group \
         = {} shuffle units\n",
        units.len()
    );

    // ── Part 1: three epochs of one seed ─────────────────────────────────
    println!("epoch permutations (seed {seed}; first 8 units as partition.group):");
    for epoch in 0..3u64 {
        let spec = ShuffleSpec::new(seed).with_epoch(epoch);
        let order: Vec<String> =
            ShuffledStream::spawn(&plan, ds.partitions(), spec, &FleetConfig::new(4, 4))?
                .map(|item| {
                    let b = item.expect("fault-free run");
                    format!("{}.{}", b.partition, b.group)
                })
                .collect();
        assert_eq!(order.len(), units.len(), "every unit exactly once");
        println!("  epoch {epoch}: {} ...", order[..order.len().min(8)].join(" "));
    }

    // ── Part 2: interrupt, serialize the cursor, resume ──────────────────
    let spec = ShuffleSpec::new(seed);
    let full: Vec<(usize, usize)> =
        ShuffledStream::spawn(&plan, ds.partitions(), spec, &FleetConfig::new(4, 4))?
            .map(|item| {
                let b = item.expect("ok");
                (b.partition, b.group)
            })
            .collect();
    let interrupt_at = units.len() / 2;
    let mut first = ShuffledStream::spawn(&plan, ds.partitions(), spec, &FleetConfig::new(4, 4))?;
    let mut stitched: Vec<(usize, usize)> = first
        .by_ref()
        .take(interrupt_at)
        .map(|item| {
            let b = item.expect("ok");
            (b.partition, b.group)
        })
        .collect();
    let checkpoint = first.cursor().encode();
    drop(first);
    println!("\ninterrupted after {interrupt_at} units; cursor = {checkpoint:?}");
    let cursor = EpochCursor::decode(&checkpoint)?;
    stitched.extend(
        ShuffledStream::resume(&plan, ds.partitions(), cursor, &FleetConfig::new(2, 4))?.map(
            |item| {
                let b = item.expect("ok");
                (b.partition, b.group)
            },
        ),
    );
    assert_eq!(stitched, full, "resume must be bit-identical to the uninterrupted epoch");
    println!("resumed: stitched epoch identical to the uninterrupted run ✓");

    // ── Part 3: group-size sweep ─────────────────────────────────────────
    // Shuffle quality vs read amplification, *measured*: `units` is the
    // permutation's sample space (more = finer shuffle), and `MiB/epoch` is
    // the data volume one shuffled epoch actually reads — every chunk of
    // every plan-projected column, summed from the row-group index
    // (`ChunkMeta::byte_len`). Smaller groups re-pay per-chunk headers and
    // reset the delta encoders more often, so the same rows occupy more
    // stored bytes; `amplification` is the ratio against whole-partition
    // groups.
    println!();
    let mut table = TextTable::new(vec![
        "rows/group",
        "units",
        "MiB/epoch",
        "amplification",
        "shuffle granularity",
    ]);
    let mut candidates = vec![1, 32, group_rows, rows];
    candidates.sort_unstable();
    candidates.dedup();
    let mut sweep: Vec<(usize, usize, u64)> = Vec::new();
    for candidate in candidates {
        let sweep_ds = Dataset::generate_grouped(&config, num_partitions, rows, 2, 7, candidate)?;
        let sweep_units = epoch_units(sweep_ds.partitions())?;
        let mut epoch_bytes = 0u64;
        for p in sweep_ds.partitions() {
            let reader = FileReader::open(p.blob.clone())?;
            let projected: Vec<usize> = plan
                .required_columns()
                .iter()
                .filter_map(|name| reader.schema().index_of(name))
                .collect();
            for rg in &reader.meta().row_groups {
                epoch_bytes += projected.iter().map(|&c| rg.columns[c].byte_len).sum::<u64>();
            }
        }
        sweep.push((candidate, sweep_units.len(), epoch_bytes));
    }
    let baseline_bytes = sweep.last().map_or(1, |&(_, _, b)| b.max(1));
    for &(candidate, units, bytes) in &sweep {
        let granularity = if candidate == 1 {
            "per-row (uniform)".to_owned()
        } else if candidate >= rows {
            "per-partition only".to_owned()
        } else {
            format!("{candidate}-row mini-batches")
        };
        table.row(vec![
            candidate.to_string(),
            units.to_string(),
            format!("{:.2}", bytes as f64 / (1024.0 * 1024.0)),
            format!("{:.2}x", bytes as f64 / baseline_bytes as f64),
            granularity,
        ]);
    }
    print!("{}", table.render());
    println!(
        "\ngroup-size tuning: rows/group = the training mini-batch ({group_rows} here) keeps\n\
         mini-batches uniformly drawn at one contiguous ranged read per column per batch;\n\
         smaller groups sharpen the shuffle but re-pay chunk headers and encoder restarts,\n\
         which the measured MiB/epoch column prices against whole-partition groups."
    );
    Ok(())
}
