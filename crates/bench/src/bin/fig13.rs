//! Fig. 13 — aggregate latency of RPC calls for inter-node communication
//! during preprocessing.

use presto_bench::{banner, print_table};
use presto_core::experiments::fig13;
use presto_metrics::TextTable;

fn main() {
    banner(
        "Fig. 13: aggregate RPC / inter-node communication time per mini-batch",
        "PreSto reduces RPC-invoked inter-node communication time by ~2.9x",
    );
    let rows = fig13();
    let base = rows[0].1.seconds();
    let mut t = TextTable::new(vec![
        "model",
        "Disagg (ms)",
        "PreSto (ms)",
        "Disagg (norm. to RM1 Disagg)",
        "PreSto (norm.)",
        "reduction",
    ]);
    let mut reductions = Vec::new();
    for (model, disagg, presto) in &rows {
        reductions.push(disagg.seconds() / presto.seconds());
        t.row(vec![
            model.clone(),
            format!("{:.1}", disagg.millis()),
            format!("{:.1}", presto.millis()),
            format!("{:.2}", disagg.seconds() / base),
            format!("{:.2}", presto.seconds() / base),
            format!("{:.1}x", disagg.seconds() / presto.seconds()),
        ]);
    }
    print_table(&t);
    let mean = reductions.iter().sum::<f64>() / reductions.len() as f64;
    println!("mean RPC-time reduction: {mean:.1}x (paper: 2.9x)");
    println!("Disagg copies raw features in and tensors out; PreSto only ships");
    println!("train-ready tensors because extraction is P2P inside the SmartSSD.");
}
