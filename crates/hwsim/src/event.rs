//! Minimal discrete-event simulation engine.
//!
//! `presto-core` uses this to simulate the producer–consumer training
//! pipeline (preprocessing workers feeding the train manager's input queue,
//! Fig. 9): events are scheduled at absolute times and delivered in
//! (time, insertion-order) order, so simultaneous events stay deterministic.

use crate::units::Secs;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event carrying a payload of type `E`.
#[derive(Debug)]
struct Scheduled<E> {
    time: Secs,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (time, seq).
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are finite")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic discrete-event queue.
///
/// # Examples
///
/// ```
/// use presto_hwsim::event::EventQueue;
/// use presto_hwsim::units::Secs;
///
/// let mut q = EventQueue::new();
/// q.schedule(Secs::new(2.0), "late");
/// q.schedule(Secs::new(1.0), "early");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t.seconds(), e), (1.0, "early"));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: Secs,
    seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    #[must_use]
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), now: Secs::ZERO, seq: 0 }
    }

    /// Current simulation time (time of the last popped event).
    #[must_use]
    pub fn now(&self) -> Secs {
        self.now
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics when scheduling into the past (a model bug).
    pub fn schedule(&mut self, time: Secs, payload: E) {
        assert!(time >= self.now, "event scheduled in the past: {time} < {}", self.now);
        self.heap.push(Scheduled { time, seq: self.seq, payload });
        self.seq += 1;
    }

    /// Schedules `payload` `delay` after the current time.
    pub fn schedule_after(&mut self, delay: Secs, payload: E) {
        let t = self.now + delay;
        self.schedule(t, payload);
    }

    /// Pops the earliest event, advancing simulation time to it.
    pub fn pop(&mut self) -> Option<(Secs, E)> {
        let ev = self.heap.pop()?;
        self.now = ev.time;
        Some((ev.time, ev.payload))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Secs::new(3.0), 3);
        q.schedule(Secs::new(1.0), 1);
        q.schedule(Secs::new(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(Secs::new(1.0), "a");
        q.schedule(Secs::new(1.0), "b");
        q.schedule(Secs::new(1.0), "c");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn time_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(Secs::new(5.0), ());
        assert_eq!(q.now(), Secs::ZERO);
        q.pop();
        assert_eq!(q.now(), Secs::new(5.0));
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(Secs::new(2.0), "first");
        q.pop();
        q.schedule_after(Secs::new(1.5), "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, Secs::new(3.5));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn past_scheduling_panics() {
        let mut q = EventQueue::new();
        q.schedule(Secs::new(2.0), ());
        q.pop();
        q.schedule(Secs::new(1.0), ());
    }

    #[test]
    fn len_and_empty_track_contents() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Secs::new(1.0), ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
