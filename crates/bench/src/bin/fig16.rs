//! Fig. 16 — accelerated preprocessing alternatives: A100 (NVTabular),
//! disaggregated U280, PreSto (U280) and PreSto (SmartSSD).

use presto_bench::{banner, print_table};
use presto_core::experiments::fig16;
use presto_metrics::{samples_per_sec, TextTable};

fn main() {
    banner(
        "Fig. 16: throughput and performance/Watt of accelerated alternatives",
        "PreSto(SmartSSD) ~2.5x A100, ~5% below disaggregated U280, far better perf/W",
    );
    let groups = fig16();
    let mut t =
        TextTable::new(vec!["model", "system", "throughput (samples/s)", "perf/W (samples/s/W)"]);
    for g in &groups {
        for (name, tput, perf_w) in &g.entries {
            t.row(vec![
                g.model.clone(),
                name.clone(),
                samples_per_sec(*tput),
                format!("{perf_w:.0}"),
            ]);
        }
    }
    print_table(&t);
    // Summary ratios on RM5.
    let rm5 = groups.last().expect("five groups");
    let get = |name: &str| {
        rm5.entries.iter().find(|(n, _, _)| n == name).map(|(_, t, _)| *t).expect("entry")
    };
    println!(
        "RM5: PreSto(SmartSSD)/A100 = {:.1}x (paper ~2.5x); PreSto(SmartSSD)/U280 = {:.2} (paper ~0.95)",
        get("PreSto (SmartSSD)") / get("A100"),
        get("PreSto (SmartSSD)") / get("U280"),
    );
    println!("Known deviation: our PreSto(U280) build lands ~2x PreSto(SmartSSD)");
    println!("instead of 'slightly higher' — see EXPERIMENTS.md.");
}
