//! Storage backends for columnar files.
//!
//! The reader only needs random-access reads ([`BlobRead`]); this is what
//! makes *selective column extraction* possible — exactly the property the
//! PreSto paper relies on to avoid overfetching unwanted features
//! (Section II-B, Extract). [`CountingBlob`] measures the bytes actually
//! touched, which the overfetch ablation bench uses.
//!
//! # Zero-copy Extract
//!
//! The interface is built around [`BlobRead::read_at_into`], which fills a
//! caller-provided buffer: a reader that recycles one [`ReadScratch`] per
//! worker performs no per-read heap allocation. Two further copies are
//! elided on the common paths:
//!
//! * [`MemBlob`] shares its bytes behind an [`Arc`], so cloning a blob (as
//!   every parallel worker does per partition) is a reference-count bump,
//!   not a file-sized `memcpy`. It also exposes the bytes directly via
//!   [`BlobRead::as_slice`], letting decoders run straight over the stored
//!   bytes with no staging copy at all.
//! * [`FsBlob`] uses positioned reads (`pread(2)` via
//!   `std::os::unix::fs::FileExt`), so parallel workers reading one file do
//!   not serialize behind a seek lock.
//!
//! # Emulated devices
//!
//! [`Device`] models a storage device as a queue-depth-limited service
//! gate: each read occupies one of [`DeviceModel::queue_depth`] slots for
//! [`DeviceModel::read_latency`], and reads beyond the depth serialize —
//! the behavior an NVMe queue actually exhibits, and the one the analytic
//! SSD model in `presto_hwsim` predicts. Place blobs behind a shared device
//! with [`MemBlob::behind_device`] to make contention measurable on any
//! host.

use crate::error::Result;
use crate::fault::{FaultInjector, FaultSite};
use std::fs;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Queue depth used by [`MemBlob::with_read_latency`]: deep enough that any
/// realistic worker fleet in this workspace (≤ 16 pipelines) never queues,
/// so the legacy "every read pays the latency independently" behavior is
/// preserved while still routing through the shared [`Device`] gate.
pub const DEFAULT_EMULATED_QUEUE_DEPTH: usize = 32;

/// Parameters of an emulated storage device.
///
/// The device services one positioned read in [`DeviceModel::read_latency`]
/// and can service at most [`DeviceModel::queue_depth`] reads concurrently
/// (the NVMe queue depth). Reads beyond the depth wait for a slot — they
/// *serialize at the device*, which is what the original sleep-per-read
/// emulation got wrong (it modeled a device with unbounded concurrency).
///
/// The analytic counterpart lives in `presto_hwsim::ssd::SsdModel`
/// (`queued_service_time`); both sides compute the same
/// `ceil(reads / depth) × latency` makespan for a backlogged device, so the
/// streaming ablation and the hardware model agree by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceModel {
    /// Service time of one positioned read.
    pub read_latency: Duration,
    /// Reads the device services concurrently (≥ 1).
    pub queue_depth: usize,
}

impl DeviceModel {
    /// A device with the given per-read service latency and queue depth
    /// (clamped to ≥ 1).
    #[must_use]
    pub fn new(read_latency: Duration, queue_depth: usize) -> Self {
        DeviceModel { read_latency, queue_depth: queue_depth.max(1) }
    }

    /// Makespan of `reads` positioned reads on a *backlogged* device:
    /// `ceil(reads / queue_depth) × read_latency`. This is the serialization
    /// the token queue produces when requests always outnumber slots, and it
    /// is the exact expression `presto_hwsim::ssd::SsdModel::
    /// queued_service_time` predicts.
    #[must_use]
    pub fn serialized_time(&self, reads: u64) -> Duration {
        let waves = reads.div_ceil(self.queue_depth.max(1) as u64);
        self.read_latency.saturating_mul(u32::try_from(waves).unwrap_or(u32::MAX))
    }
}

/// Aggregate statistics of one emulated device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeviceStats {
    /// Positioned reads serviced.
    pub reads: u64,
    /// Total service time (`reads × read_latency`).
    pub busy: Duration,
    /// Total time reads spent queued waiting for a device slot.
    pub queue_wait: Duration,
    /// Schedule makespan: first read's start to last read's completion, as
    /// scheduled by the token queue (free of host sleep jitter).
    pub makespan: Duration,
}

/// Slot schedule shared by every read on one device, in nanoseconds since
/// the device's first read.
#[derive(Debug, Default)]
struct DeviceSchedule {
    /// Instant the offsets below are measured from (set by the first read).
    origin: Option<Instant>,
    /// Per-slot busy-until offsets.
    free_at: Vec<u64>,
    /// Completion offset of the latest-finishing read scheduled so far.
    last_completion: u64,
}

/// A shared emulated storage device: a queue-depth-limited gate that every
/// positioned read on the device passes through.
///
/// Each read claims the earliest-free of `queue_depth` service slots; its
/// completion deadline is `max(now, slot_free) + read_latency` and the
/// reading thread sleeps until that *absolute* deadline. Scheduling against
/// absolute deadlines keeps the emulation faithful: sleep overshoot on one
/// read does not accumulate into the device's schedule, so a backlogged
/// queue-depth-1 device serializes `N` reads into `N × latency` wall time
/// by construction.
///
/// Share one `Arc<Device>` across every [`MemBlob`] placed on the same
/// physical device ([`MemBlob::behind_device`]); per-device contention then
/// emerges from the workload instead of being assumed away.
#[derive(Debug)]
pub struct Device {
    model: DeviceModel,
    schedule: Mutex<DeviceSchedule>,
    reads: AtomicU64,
    waited_nanos: AtomicU64,
}

impl Device {
    /// Creates an idle device.
    #[must_use]
    pub fn new(model: DeviceModel) -> Self {
        Device {
            model,
            schedule: Mutex::new(DeviceSchedule {
                origin: None,
                free_at: vec![0; model.queue_depth.max(1)],
                last_completion: 0,
            }),
            reads: AtomicU64::new(0),
            waited_nanos: AtomicU64::new(0),
        }
    }

    /// The device's parameters.
    #[must_use]
    pub fn model(&self) -> DeviceModel {
        self.model
    }

    /// Admits one read: claims the earliest-free slot and returns the
    /// absolute completion deadline the caller must sleep until.
    fn admit(&self) -> Instant {
        let now = Instant::now();
        let latency = u64::try_from(self.model.read_latency.as_nanos()).unwrap_or(u64::MAX);
        let mut s = self.schedule.lock().expect("device schedule lock");
        let origin = *s.origin.get_or_insert(now);
        let now_off = u64::try_from(now.duration_since(origin).as_nanos()).unwrap_or(u64::MAX);
        let slot = s
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|(_, &free)| free)
            .map(|(i, _)| i)
            .expect("at least one slot");
        let start = now_off.max(s.free_at[slot]);
        let completion = start.saturating_add(latency);
        s.free_at[slot] = completion;
        s.last_completion = s.last_completion.max(completion);
        drop(s);
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.waited_nanos.fetch_add(start - now_off, Ordering::Relaxed);
        origin + Duration::from_nanos(completion)
    }

    /// Statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> DeviceStats {
        let reads = self.reads.load(Ordering::Relaxed);
        let s = self.schedule.lock().expect("device schedule lock");
        DeviceStats {
            reads,
            busy: self.model.read_latency.saturating_mul(u32::try_from(reads).unwrap_or(u32::MAX)),
            queue_wait: Duration::from_nanos(self.waited_nanos.load(Ordering::Relaxed)),
            makespan: Duration::from_nanos(s.last_completion),
        }
    }
}

/// Sleeps until the absolute `deadline` (plain `thread::sleep` in a loop —
/// the std library has no stable `sleep_until`).
fn sleep_until(deadline: Instant) {
    loop {
        let now = Instant::now();
        let Some(remaining) = deadline.checked_duration_since(now) else { return };
        if remaining.is_zero() {
            return;
        }
        std::thread::sleep(remaining);
    }
}

/// Random-access read interface over a stored byte blob.
///
/// Implementors provide [`BlobRead::read_at_into`]; the allocating
/// [`BlobRead::read_at`] is derived from it. A `&B` reference to a
/// `BlobRead` also implements the trait, so readers can be passed by
/// reference.
pub trait BlobRead {
    /// Total blob length in bytes.
    fn blob_len(&self) -> u64;

    /// Fills `buf` with the `buf.len()` bytes starting at `offset`.
    ///
    /// This is the zero-copy-friendly primitive: callers that reuse the
    /// destination buffer (see [`ReadScratch`]) read without allocating.
    ///
    /// # Errors
    ///
    /// Returns an error when the range is out of bounds or the underlying
    /// medium fails.
    fn read_at_into(&self, offset: u64, buf: &mut [u8]) -> Result<()>;

    /// Reads exactly `len` bytes starting at `offset` into a fresh buffer.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BlobRead::read_at_into`].
    fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; len];
        self.read_at_into(offset, &mut buf)?;
        Ok(buf)
    }

    /// Borrows the entire blob as one in-memory slice, when the backend can
    /// do so without copying. Readers use this to decode directly from
    /// storage memory; backends that would have to materialize the bytes
    /// (files, counting decorators) return `None`.
    fn as_slice(&self) -> Option<&[u8]> {
        None
    }

    /// The blob's bytes behind their reference-counted allocation, when the
    /// backend stores them that way ([`MemBlob`] does). This is what enables
    /// *lazy plain-page decode*: a reader holding the `Arc` can hand out
    /// typed [`crate::Buffer`] views directly over the stored bytes, so an
    /// aligned plain-encoded page is never copied at all. Backends that
    /// cannot share ownership of their bytes return `None`.
    fn as_shared(&self) -> Option<Arc<Vec<u8>>> {
        None
    }
}

impl<B: BlobRead + ?Sized> BlobRead for &B {
    fn blob_len(&self) -> u64 {
        (**self).blob_len()
    }

    fn read_at_into(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        (**self).read_at_into(offset, buf)
    }

    fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        (**self).read_at(offset, len)
    }

    fn as_slice(&self) -> Option<&[u8]> {
        (**self).as_slice()
    }

    fn as_shared(&self) -> Option<Arc<Vec<u8>>> {
        (**self).as_shared()
    }
}

/// Reusable per-worker buffers for the Extract read + decode path.
///
/// One `ReadScratch` per worker turns every column-chunk read into a
/// positioned read over recycled memory: after warm-up (the largest chunk
/// seen so far) no further allocation occurs. Beyond the chunk staging
/// buffer it recycles the batched chunk decoder's intermediates — the LZ
/// decompress staging and the list-length stream — so decoded id/offset
/// blocks go straight from storage bytes into their exactly-sized output
/// buffers with nothing allocated in between.
#[derive(Debug, Default)]
pub struct ReadScratch {
    buf: Vec<u8>,
    /// LZ decompress staging for the batched chunk decoder.
    staging: Vec<u8>,
    /// List-length stream staging for the batched chunk decoder.
    lengths: Vec<u64>,
}

impl ReadScratch {
    /// Creates an empty scratch buffer.
    #[must_use]
    pub fn new() -> Self {
        ReadScratch::default()
    }

    /// All three recycled buffers as disjoint borrows:
    /// (chunk staging, LZ staging, list-length staging). Lets a caller
    /// stage a chunk read and run the batched decoder over it without
    /// overlapping `&mut self` borrows.
    pub(crate) fn split_parts(&mut self) -> (&mut Vec<u8>, &mut Vec<u8>, &mut Vec<u64>) {
        (&mut self.buf, &mut self.staging, &mut self.lengths)
    }

    /// Stages `len` bytes at `offset` from `blob` into the recycled chunk
    /// buffer (same grow-and-fill as [`ReadScratch::read`]) and returns
    /// them together with the decode intermediates as disjoint borrows —
    /// the batched chunk decoder's entry point for opaque backends.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BlobRead::read_at_into`].
    pub(crate) fn read_split<B: BlobRead + ?Sized>(
        &mut self,
        blob: &B,
        offset: u64,
        len: usize,
    ) -> Result<(&[u8], &mut Vec<u8>, &mut Vec<u64>)> {
        if self.buf.len() < len {
            self.buf.resize(len, 0);
        }
        let dst = &mut self.buf[..len];
        blob.read_at_into(offset, dst)?;
        Ok((dst, &mut self.staging, &mut self.lengths))
    }

    /// Reads `len` bytes at `offset` from `blob` into the recycled buffer
    /// and returns them as a slice.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BlobRead::read_at_into`].
    pub fn read<B: BlobRead + ?Sized>(
        &mut self,
        blob: &B,
        offset: u64,
        len: usize,
    ) -> Result<&[u8]> {
        if self.buf.len() < len {
            self.buf.resize(len, 0);
        }
        let dst = &mut self.buf[..len];
        blob.read_at_into(offset, dst)?;
        Ok(dst)
    }

    /// Current buffer capacity in bytes (diagnostic).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }
}

/// An in-memory blob, the default backend for tests and simulation.
///
/// The bytes live behind an [`Arc`]: cloning a `MemBlob` is O(1) and the
/// clone shares storage with the original, which is what lets the parallel
/// workers hand partitions around without copying file contents.
///
/// For pipeline experiments, [`MemBlob::behind_device`] puts the blob
/// behind an emulated storage [`Device`]: every positioned read is
/// scheduled onto one of the device's queue-depth service slots (reads
/// beyond the depth serialize, as they would inside an NVMe device), and
/// the zero-copy borrows are disabled — a device exposes reads, not memory.
/// This is what lets the Extract-overlap and contention benches demonstrate
/// latency hiding and queueing on any host. [`MemBlob::with_read_latency`]
/// is the legacy convenience for a private, effectively-uncontended device.
#[derive(Debug, Clone, Default)]
pub struct MemBlob {
    data: Arc<Vec<u8>>,
    device: Option<Arc<Device>>,
    faults: Option<Arc<FaultSite>>,
}

impl MemBlob {
    /// Wraps a byte buffer.
    #[must_use]
    pub fn new(data: Vec<u8>) -> Self {
        MemBlob { data: Arc::new(data), device: None, faults: None }
    }

    /// Arms the blob against a shared [`FaultInjector`], keying injected
    /// faults on `(device, partition)`. Every positioned read then passes
    /// through the injector *before* any emulated-device gate, and — as
    /// with [`MemBlob::behind_device`] — the zero-copy borrows are
    /// disabled: a faulty medium exposes reads, not memory, so no decode
    /// path can sidestep the injection. Clones share the arming (and the
    /// per-partition read counter that makes injection deterministic).
    #[must_use]
    pub fn with_faults(
        mut self,
        injector: &Arc<FaultInjector>,
        device: usize,
        partition: usize,
    ) -> Self {
        self.faults = Some(Arc::new(FaultSite::new(Arc::clone(injector), device, partition)));
        self
    }

    /// A clone of this blob with the fault arming removed: same bytes,
    /// same emulated device (if any), pristine access path. This is the
    /// failover primitive — an ISP engine dying does not destroy the
    /// media, so the host fleet re-reads the partition through its own
    /// (unarmed) block-I/O path and gets the stored bytes intact.
    #[must_use]
    pub fn without_faults(&self) -> Self {
        MemBlob { data: Arc::clone(&self.data), device: self.device.clone(), faults: None }
    }

    /// The fault site this blob is armed with, when any.
    #[must_use]
    pub fn fault_site(&self) -> Option<&Arc<FaultSite>> {
        self.faults.as_ref()
    }

    /// Places the blob behind an emulated storage device: every
    /// `read_at`/`read_at_into` is scheduled through `device`'s queue-depth
    /// gate, and [`BlobRead::as_slice`] / [`BlobRead::as_shared`] report
    /// `None` (reads must go through the "device"). Shares the same
    /// underlying bytes as `self`; share the same `Arc<Device>` across all
    /// blobs resident on one physical device so they contend for its slots.
    #[must_use]
    pub fn behind_device(mut self, device: Arc<Device>) -> Self {
        self.device = Some(device);
        self
    }

    /// Emulates device latency with a private, deep-queued device
    /// ([`DEFAULT_EMULATED_QUEUE_DEPTH`] slots): every read pays `latency`
    /// but reads never queue behind each other — the pre-queue-model
    /// behavior, kept for overlap experiments where contention is not the
    /// subject. Use [`MemBlob::behind_device`] with an explicit
    /// [`DeviceModel`] to model a real queue depth.
    #[must_use]
    pub fn with_read_latency(self, latency: Duration) -> Self {
        if latency.is_zero() {
            return self;
        }
        self.behind_device(Arc::new(Device::new(DeviceModel::new(
            latency,
            DEFAULT_EMULATED_QUEUE_DEPTH,
        ))))
    }

    /// The emulated device backing this blob, when one is configured.
    #[must_use]
    pub fn device(&self) -> Option<&Arc<Device>> {
        self.device.as_ref()
    }

    /// The configured per-read latency (zero for plain memory).
    #[must_use]
    pub fn read_latency(&self) -> Duration {
        self.device.as_ref().map_or(Duration::ZERO, |d| d.model().read_latency)
    }

    /// Borrows the underlying bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Returns the underlying buffer, copying only if other clones still
    /// share it.
    #[must_use]
    pub fn into_inner(self) -> Vec<u8> {
        Arc::try_unwrap(self.data).unwrap_or_else(|shared| (*shared).clone())
    }
}

impl From<Vec<u8>> for MemBlob {
    fn from(data: Vec<u8>) -> Self {
        MemBlob::new(data)
    }
}

impl BlobRead for MemBlob {
    fn blob_len(&self) -> u64 {
        self.data.len() as u64
    }

    fn read_at_into(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        // Faults fire before the device gate: a read refused by the medium
        // never occupies a device slot, and injected corruption touches the
        // destination buffer only (stored bytes stay pristine).
        let corrupt = match &self.faults {
            Some(site) => site.intercept()?,
            None => false,
        };
        if let Some(device) = &self.device {
            sleep_until(device.admit());
        }
        let start = usize::try_from(offset).map_err(|_| crate::ColumnarError::Io {
            detail: format!("offset {offset} out of addressable range"),
        })?;
        let end = start
            .checked_add(buf.len())
            .filter(|&e| e <= self.data.len())
            .ok_or(crate::ColumnarError::UnexpectedEof { context: "blob range read" })?;
        buf.copy_from_slice(&self.data[start..end]);
        if corrupt {
            FaultSite::corrupt(buf);
        }
        Ok(())
    }

    fn as_slice(&self) -> Option<&[u8]> {
        if self.device.is_none() && self.faults.is_none() {
            Some(&self.data)
        } else {
            None
        }
    }

    fn as_shared(&self) -> Option<Arc<Vec<u8>>> {
        if self.device.is_none() && self.faults.is_none() {
            Some(Arc::clone(&self.data))
        } else {
            None
        }
    }
}

/// A blob backed by a file on disk.
///
/// Reads use positioned I/O (`pread(2)`), so concurrent workers reading
/// different ranges of one file proceed in parallel with no shared cursor
/// and no lock.
#[derive(Debug)]
pub struct FsBlob {
    file: fs::File,
    len: u64,
}

impl FsBlob {
    /// Opens `path` for random-access reading.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let file = fs::File::open(path)?;
        let len = file.metadata()?.len();
        Ok(FsBlob { file, len })
    }
}

impl BlobRead for FsBlob {
    fn blob_len(&self) -> u64 {
        self.len
    }

    #[cfg(unix)]
    fn read_at_into(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.read_exact_at(buf, offset)?;
        Ok(())
    }

    #[cfg(windows)]
    fn read_at_into(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        use std::os::windows::fs::FileExt;
        let mut pos = offset;
        let mut filled = 0usize;
        while filled < buf.len() {
            let n = self.file.seek_read(&mut buf[filled..], pos)?;
            if n == 0 {
                return Err(crate::ColumnarError::UnexpectedEof { context: "file range read" });
            }
            filled += n;
            pos += n as u64;
        }
        Ok(())
    }
}

/// Decorator that counts bytes and read calls issued to an inner blob.
///
/// Used to demonstrate the columnar format's selective-read property: reading
/// two of forty columns must touch roughly 1/20 of the file.
///
/// `CountingBlob` deliberately does **not** forward [`BlobRead::as_slice`]
/// or [`BlobRead::as_shared`]: the zero-copy borrows would bypass
/// `read_at_into` and the counters with it, and the whole point of the
/// decorator is to observe the traffic.
#[derive(Debug)]
pub struct CountingBlob<B> {
    inner: B,
    bytes_read: AtomicU64,
    read_calls: AtomicU64,
}

impl<B: BlobRead> CountingBlob<B> {
    /// Wraps `inner` with counters starting at zero.
    #[must_use]
    pub fn new(inner: B) -> Self {
        CountingBlob { inner, bytes_read: AtomicU64::new(0), read_calls: AtomicU64::new(0) }
    }

    /// Total bytes read so far.
    #[must_use]
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Total `read_at` / `read_at_into` invocations so far.
    #[must_use]
    pub fn read_calls(&self) -> u64 {
        self.read_calls.load(Ordering::Relaxed)
    }

    /// Resets both counters to zero.
    pub fn reset(&self) {
        self.bytes_read.store(0, Ordering::Relaxed);
        self.read_calls.store(0, Ordering::Relaxed);
    }

    /// Returns the wrapped blob.
    #[must_use]
    pub fn into_inner(self) -> B {
        self.inner
    }
}

impl<B: BlobRead> BlobRead for CountingBlob<B> {
    fn blob_len(&self) -> u64 {
        self.inner.blob_len()
    }

    fn read_at_into(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.read_calls.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(buf.len() as u64, Ordering::Relaxed);
        self.inner.read_at_into(offset, buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_blob_reads_ranges() {
        let blob = MemBlob::new((0u8..100).collect());
        assert_eq!(blob.blob_len(), 100);
        assert_eq!(blob.read_at(10, 3).unwrap(), vec![10, 11, 12]);
        assert!(blob.read_at(99, 2).is_err());
        assert!(blob.read_at(200, 1).is_err());
    }

    #[test]
    fn mem_blob_zero_len_read_at_end_is_ok() {
        let blob = MemBlob::new(vec![1, 2, 3]);
        assert_eq!(blob.read_at(3, 0).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn mem_blob_clone_shares_storage() {
        let blob = MemBlob::new(vec![7; 1 << 20]);
        let clone = blob.clone();
        // Same allocation, not a copy.
        assert!(std::ptr::eq(blob.as_bytes(), clone.as_bytes()));
        assert_eq!(clone.into_inner().len(), 1 << 20);
        // The original still owns the bytes after the clone is consumed.
        assert_eq!(blob.into_inner().len(), 1 << 20);
    }

    #[test]
    fn mem_blob_exposes_slice() {
        let blob = MemBlob::new(vec![1, 2, 3]);
        assert_eq!(blob.as_slice().unwrap(), &[1, 2, 3]);
        let by_ref: &MemBlob = &blob;
        assert_eq!(BlobRead::as_slice(&by_ref).unwrap(), &[1, 2, 3]);
    }

    #[test]
    fn mem_blob_shares_its_allocation() {
        let blob = MemBlob::new(vec![5, 6, 7]);
        let shared = blob.as_shared().unwrap();
        assert!(std::ptr::eq(shared.as_slice(), blob.as_bytes()));
        let by_ref: &MemBlob = &blob;
        assert!(BlobRead::as_shared(&by_ref).is_some());
        // Decorators and files stay opaque.
        assert!(CountingBlob::new(blob).as_shared().is_none());
    }

    #[test]
    fn read_at_into_fills_buffer_without_error() {
        let blob = MemBlob::new((0u8..32).collect());
        let mut buf = [0u8; 4];
        blob.read_at_into(8, &mut buf).unwrap();
        assert_eq!(buf, [8, 9, 10, 11]);
        assert!(blob.read_at_into(30, &mut buf).is_err());
    }

    #[test]
    fn read_scratch_recycles_buffer() {
        let blob = MemBlob::new((0u8..64).collect());
        let mut scratch = ReadScratch::new();
        assert_eq!(scratch.read(&blob, 0, 16).unwrap()[15], 15);
        let cap = scratch.capacity();
        // Smaller and equal reads must not grow the buffer.
        assert_eq!(scratch.read(&blob, 32, 8).unwrap(), (32u8..40).collect::<Vec<_>>());
        assert_eq!(scratch.read(&blob, 0, 16).unwrap().len(), 16);
        assert_eq!(scratch.capacity(), cap);
    }

    #[test]
    fn latency_blob_behaves_like_a_device() {
        let blob = MemBlob::new((0u8..32).collect());
        let slow = blob.clone().with_read_latency(Duration::from_millis(5));
        // Same bytes, device semantics: no zero-copy borrows.
        assert_eq!(slow.read_latency(), Duration::from_millis(5));
        assert!(slow.as_slice().is_none());
        assert!(slow.as_shared().is_none());
        assert!(blob.as_slice().is_some(), "plain clone keeps memory semantics");
        let t0 = std::time::Instant::now();
        assert_eq!(slow.read_at(4, 2).unwrap(), vec![4, 5]);
        assert!(t0.elapsed() >= Duration::from_millis(5), "read must pay the latency");
    }

    #[test]
    fn device_model_serializes_by_waves() {
        let m = DeviceModel::new(Duration::from_millis(2), 4);
        assert_eq!(m.serialized_time(0), Duration::ZERO);
        assert_eq!(m.serialized_time(4), Duration::from_millis(2));
        assert_eq!(m.serialized_time(5), Duration::from_millis(4));
        assert_eq!(m.serialized_time(12), Duration::from_millis(6));
        // Depth clamps to 1.
        assert_eq!(DeviceModel::new(Duration::from_millis(2), 0).queue_depth, 1);
    }

    #[test]
    fn shared_device_queue_depth_one_serializes_concurrent_reads() {
        let device = Arc::new(Device::new(DeviceModel::new(Duration::from_millis(4), 1)));
        let blob = MemBlob::new((0u8..64).collect()).behind_device(Arc::clone(&device));
        assert!(blob.as_slice().is_none(), "device blobs expose reads, not memory");
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for t in 0..3usize {
                let blob = blob.clone();
                scope.spawn(move || {
                    let got = blob.read_at(t as u64, 4).unwrap();
                    assert_eq!(got[0], t as u8);
                });
            }
        });
        // Three reads through a depth-1 device cannot overlap.
        assert!(t0.elapsed() >= Duration::from_millis(12), "elapsed {:?}", t0.elapsed());
        let stats = device.stats();
        assert_eq!(stats.reads, 3);
        // Depth 1 chains completions: each read starts no earlier than the
        // previous one finished, so the schedule makespan is at least N × L
        // whatever the arrival spread.
        assert!(stats.makespan >= Duration::from_millis(12), "makespan {:?}", stats.makespan);
        assert_eq!(stats.busy, Duration::from_millis(12));
    }

    #[test]
    fn deep_device_queue_restores_overlap() {
        // Generous latency so scheduler noise on loaded CI hosts cannot
        // push the overlapped case past the serialized bound (160ms).
        let device = Arc::new(Device::new(DeviceModel::new(Duration::from_millis(40), 4)));
        let blob = MemBlob::new(vec![1; 32]).behind_device(Arc::clone(&device));
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let blob = blob.clone();
                scope.spawn(move || blob.read_at(0, 8).unwrap());
            }
        });
        let elapsed = t0.elapsed();
        assert!(elapsed >= Duration::from_millis(40));
        assert!(elapsed < Duration::from_millis(120), "4 slots must overlap, took {elapsed:?}");
        // Schedule makespan = latency + spawn skew (each read starts on
        // arrival; no read ever queues).
        let makespan = device.stats().makespan;
        assert!(makespan >= Duration::from_millis(40), "makespan {makespan:?}");
        assert!(makespan < Duration::from_millis(120), "no queueing expected, got {makespan:?}");
    }

    #[test]
    fn clones_share_the_device_gate() {
        let device = Arc::new(Device::new(DeviceModel::new(Duration::from_micros(100), 1)));
        let blob = MemBlob::new(vec![0; 16]).behind_device(Arc::clone(&device));
        let clone = blob.clone();
        blob.read_at(0, 4).unwrap();
        clone.read_at(4, 4).unwrap();
        assert_eq!(device.stats().reads, 2, "both clones route through one device");
        assert_eq!(blob.read_latency(), Duration::from_micros(100));
    }

    #[test]
    fn counting_blob_tracks_traffic() {
        let blob = CountingBlob::new(MemBlob::new(vec![0; 1000]));
        blob.read_at(0, 100).unwrap();
        blob.read_at(500, 50).unwrap();
        assert_eq!(blob.bytes_read(), 150);
        assert_eq!(blob.read_calls(), 2);
        blob.reset();
        assert_eq!(blob.bytes_read(), 0);
    }

    #[test]
    fn counting_blob_does_not_expose_slice() {
        // A zero-copy borrow would bypass the counters; see the type docs.
        let blob = CountingBlob::new(MemBlob::new(vec![0; 8]));
        assert!(blob.as_slice().is_none());
    }

    #[test]
    fn fs_blob_roundtrips_through_disk() {
        let dir = std::env::temp_dir().join("presto_columnar_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blob.bin");
        std::fs::write(&path, [9u8, 8, 7, 6, 5]).unwrap();
        let blob = FsBlob::open(&path).unwrap();
        assert_eq!(blob.blob_len(), 5);
        assert_eq!(blob.read_at(1, 3).unwrap(), vec![8, 7, 6]);
        assert!(blob.as_slice().is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fs_blob_positioned_reads_are_parallel_safe() {
        let dir = std::env::temp_dir().join("presto_columnar_io_par_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("parallel.bin");
        let payload: Vec<u8> = (0..=255u8).cycle().take(1 << 16).collect();
        std::fs::write(&path, &payload).unwrap();
        let blob = FsBlob::open(&path).unwrap();
        // Many threads reading interleaved ranges through one handle must
        // all see their own range (no shared-cursor interference).
        std::thread::scope(|scope| {
            for t in 0..8usize {
                let blob = &blob;
                let payload = &payload;
                scope.spawn(move || {
                    for i in 0..200usize {
                        let off = (t * 251 + i * 37) % (payload.len() - 16);
                        let got = blob.read_at(off as u64, 16).unwrap();
                        assert_eq!(got, &payload[off..off + 16]);
                    }
                });
            }
        });
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn blob_read_by_reference_works() {
        fn total_len(b: impl BlobRead) -> u64 {
            b.blob_len()
        }
        let blob = MemBlob::new(vec![0; 10]);
        assert_eq!(total_len(&blob), 10);
        assert_eq!(blob.blob_len(), 10);
    }
}
