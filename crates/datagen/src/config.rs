//! RecSys model / dataset configurations — Table I of the PreSto paper.
//!
//! RM1 mirrors the public Criteo dataset; RM2–RM5 are the paper's synthetic
//! production-scale variants (built per Zhao et al.'s published Meta dataset
//! characteristics: 504 dense features, 42 sparse features, average sparse
//! length 20).

use serde::{Deserialize, Serialize};

/// Mini-batch size used throughout the paper's evaluation (Section V-B).
pub const DEFAULT_BATCH_SIZE: usize = 8192;

/// Embedding vector width. The paper inherits DLRM's convention where the
/// embedding dimension matches the bottom-MLP output (128).
pub const EMBEDDING_DIM: usize = 128;

/// One row of Table I: dataset shape plus the trained model architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RmConfig {
    /// Human-readable name ("RM1" .. "RM5").
    pub name: String,
    /// Number of dense (continuous) features.
    pub num_dense: usize,
    /// Number of raw sparse (categorical, variable-length) features.
    pub num_sparse: usize,
    /// Average sparse feature length (list elements per row).
    pub avg_sparse_len: usize,
    /// When true, every sparse list has exactly `avg_sparse_len` elements
    /// (Criteo's "1 (fixed)" case).
    pub fixed_sparse_len: bool,
    /// Number of sparse features generated from dense features via Bucketize.
    pub num_generated: usize,
    /// Bucket boundary count `m` for Bucketize (Algorithm 1).
    pub bucket_size: usize,
    /// Bottom MLP layer widths.
    pub bottom_mlp: Vec<usize>,
    /// Top MLP layer widths.
    pub top_mlp: Vec<usize>,
    /// Number of embedding tables (= raw sparse + generated sparse).
    pub num_tables: usize,
    /// Average rows per embedding table.
    pub avg_embeddings: usize,
    /// Training mini-batch size.
    pub batch_size: usize,
}

impl RmConfig {
    /// RM1 — the public Criteo dataset (Table I, row 1).
    #[must_use]
    pub fn rm1() -> Self {
        RmConfig {
            name: "RM1".into(),
            num_dense: 13,
            num_sparse: 26,
            avg_sparse_len: 1,
            fixed_sparse_len: true,
            num_generated: 13,
            bucket_size: 1024,
            bottom_mlp: vec![512, 256, 128],
            top_mlp: vec![1024, 1024, 512, 256, 1],
            num_tables: 39,
            avg_embeddings: 500_000,
            batch_size: DEFAULT_BATCH_SIZE,
        }
    }

    /// RM2 — synthetic production-scale model (Table I, row 2).
    #[must_use]
    pub fn rm2() -> Self {
        RmConfig {
            name: "RM2".into(),
            num_generated: 21,
            num_tables: 63,
            ..Self::production_base()
        }
    }

    /// RM3 — synthetic production-scale model (Table I, row 3).
    #[must_use]
    pub fn rm3() -> Self {
        RmConfig { name: "RM3".into(), ..Self::production_base() }
    }

    /// RM4 — RM3 with bucket size 2048 (Table I, row 4).
    #[must_use]
    pub fn rm4() -> Self {
        RmConfig { name: "RM4".into(), bucket_size: 2048, ..Self::production_base() }
    }

    /// RM5 — RM3 with bucket size 4096 (Table I, row 5).
    #[must_use]
    pub fn rm5() -> Self {
        RmConfig { name: "RM5".into(), bucket_size: 4096, ..Self::production_base() }
    }

    /// RM1 with production-shaped sparse lists (average length 8,
    /// variable) — the RM-variant of Meta's ingestion study where list
    /// operators (FirstX truncation, n-gram feature crosses) have real
    /// work to do. Criteo's fixed length-1 lists make those ops no-ops, so
    /// the non-canonical scenario graphs and their benches use this shape.
    #[must_use]
    pub fn rm1_lists() -> Self {
        RmConfig { name: "RM1-L".into(), avg_sparse_len: 8, fixed_sparse_len: false, ..Self::rm1() }
    }

    /// Long-sequence user-history shape — the RecD/late-materialization
    /// scenario: a handful of ultra-long skewed list columns (average
    /// length 512, exponentially distributed up to 4×) consumed through
    /// `FirstX`-headed chains. This is where prefix pushdown has its >90%
    /// decode-work savings; `PlanGraph::long_history` in `presto-ops`
    /// provides the matching graph.
    #[must_use]
    pub fn rm_longseq() -> Self {
        RmConfig {
            name: "RM-LS".into(),
            num_dense: 4,
            num_sparse: 4,
            avg_sparse_len: 512,
            fixed_sparse_len: false,
            num_generated: 4,
            num_tables: 8,
            ..Self::rm1()
        }
    }

    /// Common shape of RM2–RM5 before per-model overrides.
    fn production_base() -> Self {
        RmConfig {
            name: "RMx".into(),
            num_dense: 504,
            num_sparse: 42,
            avg_sparse_len: 20,
            fixed_sparse_len: false,
            num_generated: 42,
            bucket_size: 1024,
            bottom_mlp: vec![512, 256, 128],
            top_mlp: vec![1024, 1024, 512, 256, 1],
            num_tables: 84,
            avg_embeddings: 500_000,
            batch_size: DEFAULT_BATCH_SIZE,
        }
    }

    /// All five Table I configurations, in order.
    #[must_use]
    pub fn all() -> Vec<Self> {
        vec![Self::rm1(), Self::rm2(), Self::rm3(), Self::rm4(), Self::rm5()]
    }

    /// Scales the feature counts by `factor`, the Fig. 17 sensitivity knob.
    ///
    /// Generated, raw sparse and dense feature counts (and the table count,
    /// which is derived from the first two) all scale together, matching the
    /// x-axis of Fig. 17 where "1×" is the RM5 configuration.
    #[must_use]
    pub fn scaled_features(&self, factor: usize) -> Self {
        let mut c = self.clone();
        c.name = format!("{}x{}", self.name, factor);
        c.num_dense = self.num_dense * factor;
        c.num_sparse = self.num_sparse * factor;
        c.num_generated = self.num_generated * factor;
        c.num_tables = c.num_sparse + c.num_generated;
        c
    }

    /// Dense scalar values per mini-batch.
    #[must_use]
    pub fn dense_values_per_batch(&self) -> u64 {
        (self.batch_size * self.num_dense) as u64
    }

    /// Raw sparse list elements per mini-batch (expected value).
    #[must_use]
    pub fn sparse_values_per_batch(&self) -> u64 {
        (self.batch_size * self.num_sparse * self.avg_sparse_len) as u64
    }

    /// Bucketize outputs per mini-batch (one id per row per generated feature).
    #[must_use]
    pub fn generated_values_per_batch(&self) -> u64 {
        (self.batch_size * self.num_generated) as u64
    }

    /// Consistency checks on a (possibly user-built) configuration.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_dense == 0 {
            return Err("num_dense must be positive".into());
        }
        if self.num_generated > self.num_dense {
            return Err(format!(
                "cannot generate {} sparse features from {} dense features",
                self.num_generated, self.num_dense
            ));
        }
        if self.bucket_size < 2 {
            return Err("bucket_size must be at least 2".into());
        }
        if self.batch_size == 0 {
            return Err("batch_size must be positive".into());
        }
        if self.num_tables != self.num_sparse + self.num_generated {
            return Err(format!(
                "num_tables {} != num_sparse {} + num_generated {}",
                self.num_tables, self.num_sparse, self.num_generated
            ));
        }
        if self.avg_sparse_len == 0 && self.num_sparse > 0 {
            return Err("avg_sparse_len must be positive when sparse features exist".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_values_match_paper() {
        let rm1 = RmConfig::rm1();
        assert_eq!((rm1.num_dense, rm1.num_sparse, rm1.avg_sparse_len), (13, 26, 1));
        assert_eq!((rm1.num_generated, rm1.bucket_size, rm1.num_tables), (13, 1024, 39));

        let rm2 = RmConfig::rm2();
        assert_eq!((rm2.num_dense, rm2.num_sparse, rm2.avg_sparse_len), (504, 42, 20));
        assert_eq!((rm2.num_generated, rm2.bucket_size, rm2.num_tables), (21, 1024, 63));

        let rm3 = RmConfig::rm3();
        assert_eq!((rm3.num_generated, rm3.bucket_size, rm3.num_tables), (42, 1024, 84));
        assert_eq!(RmConfig::rm4().bucket_size, 2048);
        assert_eq!(RmConfig::rm5().bucket_size, 4096);
    }

    #[test]
    fn all_configs_validate() {
        for c in RmConfig::all() {
            c.validate().unwrap_or_else(|e| panic!("{} invalid: {e}", c.name));
        }
    }

    #[test]
    fn rm1_lists_is_rm1_with_variable_lists() {
        let v = RmConfig::rm1_lists();
        v.validate().unwrap();
        assert_eq!(v.avg_sparse_len, 8);
        assert!(!v.fixed_sparse_len);
        let rm1 = RmConfig::rm1();
        assert_eq!((v.num_dense, v.num_sparse, v.num_generated), (13, 26, 13));
        assert_eq!(v.bucket_size, rm1.bucket_size);
    }

    #[test]
    fn rm_longseq_is_a_long_skewed_list_shape() {
        let c = RmConfig::rm_longseq();
        c.validate().unwrap();
        assert!(c.avg_sparse_len >= 512);
        assert!(!c.fixed_sparse_len);
        assert_eq!(c.num_tables, c.num_sparse + c.num_generated);
    }

    #[test]
    fn all_returns_five_in_order() {
        let names: Vec<String> = RmConfig::all().into_iter().map(|c| c.name).collect();
        assert_eq!(names, vec!["RM1", "RM2", "RM3", "RM4", "RM5"]);
    }

    #[test]
    fn scaling_multiplies_feature_counts() {
        let base = RmConfig::rm5();
        let x2 = base.scaled_features(2);
        assert_eq!(x2.num_dense, 1008);
        assert_eq!(x2.num_sparse, 84);
        assert_eq!(x2.num_generated, 84);
        assert_eq!(x2.num_tables, 168);
        x2.validate().unwrap();
        let x1 = base.scaled_features(1);
        assert_eq!(x1.num_dense, base.num_dense);
    }

    #[test]
    fn per_batch_counts() {
        let rm1 = RmConfig::rm1();
        assert_eq!(rm1.dense_values_per_batch(), 8192 * 13);
        assert_eq!(rm1.sparse_values_per_batch(), 8192 * 26);
        assert_eq!(rm1.generated_values_per_batch(), 8192 * 13);
        let rm5 = RmConfig::rm5();
        assert_eq!(rm5.sparse_values_per_batch(), 8192 * 42 * 20);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = RmConfig::rm1();
        c.num_generated = 99; // more than dense
        assert!(c.validate().is_err());
        let mut c = RmConfig::rm1();
        c.bucket_size = 1;
        assert!(c.validate().is_err());
        let mut c = RmConfig::rm1();
        c.num_tables = 1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn serde_roundtrip_via_debug_shape() {
        // serde derives compile and preserve fields (spot check via clone/eq).
        let c = RmConfig::rm3();
        let c2 = c.clone();
        assert_eq!(c, c2);
    }
}
