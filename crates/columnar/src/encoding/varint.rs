//! LEB128 variable-length integers with ZigZag signed mapping.
//!
//! These are the primitive building blocks of every other encoding in this
//! crate: page headers, dictionary indices, list offsets and delta streams all
//! serialize their integers through this module.

use crate::error::{ColumnarError, Result};

/// Appends `value` to `out` as an unsigned LEB128 varint (1..=10 bytes).
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends `value` using the ZigZag mapping so small negative numbers stay
/// small on disk.
pub fn write_i64(out: &mut Vec<u8>, value: i64) {
    write_u64(out, zigzag_encode(value));
}

/// Reads an unsigned LEB128 varint from `buf` starting at `*pos`, advancing
/// `*pos` past the consumed bytes.
///
/// One- to three-byte varints (the overwhelming majority on the decode hot
/// path: list lengths, dictionary indices and id deltas) take an inlined
/// fast path with one branch per byte; longer or truncated encodings fall
/// back to the checked loop.
///
/// # Errors
///
/// Returns [`ColumnarError::UnexpectedEof`] when the buffer ends mid-varint
/// and [`ColumnarError::ValueOutOfRange`] when the encoding exceeds 64 bits.
#[inline]
pub fn read_u64(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let p = *pos;
    if let Some(&b0) = buf.get(p) {
        if b0 & 0x80 == 0 {
            *pos = p + 1;
            return Ok(u64::from(b0));
        }
        if let Some(&b1) = buf.get(p + 1) {
            if b1 & 0x80 == 0 {
                *pos = p + 2;
                return Ok(u64::from(b0 & 0x7f) | (u64::from(b1) << 7));
            }
            if let Some(&b2) = buf.get(p + 2) {
                if b2 & 0x80 == 0 {
                    *pos = p + 3;
                    return Ok(u64::from(b0 & 0x7f)
                        | (u64::from(b1 & 0x7f) << 7)
                        | (u64::from(b2) << 14));
                }
            }
        }
    }
    read_u64_slow(buf, pos)
}

/// Checked general-case decoder behind [`read_u64`]'s fast path.
#[cold]
fn read_u64_slow(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let mut shift = 0u32;
    let mut acc = 0u64;
    loop {
        let Some(&byte) = buf.get(*pos) else {
            return Err(ColumnarError::UnexpectedEof { context: "varint" });
        };
        *pos += 1;
        if shift >= 64 {
            return Err(ColumnarError::ValueOutOfRange {
                detail: "varint longer than 10 bytes".into(),
            });
        }
        // The 10th byte may only contribute the lowest bit of the 64-bit value.
        if shift == 63 && byte & 0x7e != 0 {
            return Err(ColumnarError::ValueOutOfRange { detail: "varint overflows u64".into() });
        }
        acc |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(acc);
        }
        shift += 7;
    }
}

/// Decodes `out.len()` consecutive unsigned varints into `out`, advancing
/// `*pos` past the consumed bytes.
///
/// This is the batched decoder behind the delta-varint fallback encoding:
/// while at least 8 bytes remain, one little-endian word load locates the
/// varint terminator for every 1..=8-byte encoding via the continuation-bit
/// mask (`!word & 0x8080…`), so the common path performs one bounds check
/// and one branch per *value* instead of one per *byte*. Longer encodings
/// and the buffer tail fall back to the checked scalar decoder.
///
/// # Errors
///
/// Same as [`read_u64`]; on error `*pos` is left unchanged.
pub fn read_u64_group(buf: &[u8], pos: &mut usize, out: &mut [u64]) -> Result<()> {
    let mut p = *pos;
    let mut i = 0;
    while i < out.len() && p + 8 <= buf.len() {
        let word = u64::from_le_bytes(buf[p..p + 8].try_into().expect("8 bytes"));
        let stops = !word & 0x8080_8080_8080_8080;
        if stops == 0 {
            // 9- or 10-byte encoding (top-range u64): rare, take the checked
            // scalar path which also validates overflow.
            out[i] = read_u64(buf, &mut p)?;
        } else {
            let n = (stops.trailing_zeros() / 8 + 1) as usize; // 1..=8 bytes
            let mut acc = 0u64;
            for b in 0..n {
                acc |= u64::from((word >> (8 * b)) as u8 & 0x7f) << (7 * b);
            }
            out[i] = acc;
            p += n;
        }
        i += 1;
    }
    for v in &mut out[i..] {
        *v = read_u64(buf, &mut p)?;
    }
    *pos = p;
    Ok(())
}

/// Signed counterpart of [`read_u64`].
///
/// # Errors
///
/// Same as [`read_u64`].
pub fn read_i64(buf: &[u8], pos: &mut usize) -> Result<i64> {
    Ok(zigzag_decode(read_u64(buf, pos)?))
}

/// Maps a signed integer onto an unsigned one with small magnitudes first:
/// `0, -1, 1, -2, 2, ...`.
#[must_use]
pub fn zigzag_encode(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
#[must_use]
pub fn zigzag_decode(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Number of bytes [`write_u64`] would emit for `value`.
#[must_use]
pub fn encoded_len_u64(value: u64) -> usize {
    if value == 0 {
        1
    } else {
        (64 - value.leading_zeros() as usize).div_ceil(7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_u(value: u64) {
        let mut buf = Vec::new();
        write_u64(&mut buf, value);
        assert_eq!(buf.len(), encoded_len_u64(value), "len estimate for {value}");
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos).unwrap(), value);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn unsigned_roundtrips() {
        for v in [0, 1, 127, 128, 300, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            roundtrip_u(v);
        }
    }

    #[test]
    fn signed_roundtrips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, -123_456_789] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_i64(&buf, &mut pos).unwrap(), v);
        }
    }

    #[test]
    fn zigzag_small_magnitudes_stay_small() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
        for v in -1000..1000 {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn eof_is_detected() {
        // A continuation bit with no following byte.
        let buf = [0x80u8];
        let mut pos = 0;
        assert!(matches!(read_u64(&buf, &mut pos), Err(ColumnarError::UnexpectedEof { .. })));
    }

    #[test]
    fn overlong_varint_rejected() {
        let buf = [0xffu8; 11];
        let mut pos = 0;
        assert!(matches!(read_u64(&buf, &mut pos), Err(ColumnarError::ValueOutOfRange { .. })));
    }

    #[test]
    fn tenth_byte_overflow_rejected() {
        // 9 continuation bytes then a byte with more than the low bit set.
        let mut buf = vec![0x80u8; 9];
        buf.push(0x02);
        let mut pos = 0;
        assert!(read_u64(&buf, &mut pos).is_err());
    }

    #[test]
    fn group_decode_matches_scalar_decode() {
        // Mix of 1..=10-byte encodings, including word-straddling layouts.
        let values: Vec<u64> = (0..500)
            .map(|i| match i % 7 {
                0 => i % 128,
                1 => 300,
                2 => 1 << 20,
                3 => 1 << 34,
                4 => 1 << 48,
                5 => u64::MAX - i,
                _ => (i * 0x9e37_79b9) ^ (i << 40),
            })
            .collect();
        let mut buf = Vec::new();
        for &v in &values {
            write_u64(&mut buf, v);
        }
        let mut grouped = vec![0u64; values.len()];
        let mut pos = 0;
        read_u64_group(&buf, &mut pos, &mut grouped).unwrap();
        assert_eq!(grouped, values);
        assert_eq!(pos, buf.len());
        // Odd group splits must land on the same values.
        let mut pos = 0;
        let mut head = vec![0u64; 13];
        let mut tail = vec![0u64; values.len() - 13];
        read_u64_group(&buf, &mut pos, &mut head).unwrap();
        read_u64_group(&buf, &mut pos, &mut tail).unwrap();
        assert_eq!(head, values[..13]);
        assert_eq!(tail, values[13..]);
    }

    #[test]
    fn group_decode_detects_truncation() {
        let mut buf = Vec::new();
        for v in [1u64, 300, 1 << 30] {
            write_u64(&mut buf, v);
        }
        buf.pop();
        let mut out = vec![0u64; 3];
        let mut pos = 0;
        assert!(read_u64_group(&buf, &mut pos, &mut out).is_err());
        assert_eq!(pos, 0, "failed group decode must not move the cursor");
    }

    #[test]
    fn max_u64_is_ten_bytes() {
        assert_eq!(encoded_len_u64(u64::MAX), 10);
        assert_eq!(encoded_len_u64(0), 1);
        assert_eq!(encoded_len_u64(127), 1);
        assert_eq!(encoded_len_u64(128), 2);
    }
}
