//! Value encodings: plain, varint/delta, RLE/bit-pack hybrid and dictionary.
//!
//! The writer picks an encoding per page based on estimated size (see
//! [`choose_i64_encoding`]); the page header records the choice so readers
//! can dispatch without configuration.

pub mod bitpack;
pub mod delta;
pub mod dictionary;
pub mod plain;
pub mod rle;
pub mod varint;

use crate::error::{ColumnarError, Result};

/// The encoding applied to one page's value stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Encoding {
    /// Fixed-width little-endian values.
    Plain,
    /// First value + zigzag varint deltas (integers only).
    Delta,
    /// Sorted dictionary + RLE-compressed indices (integers only).
    Dictionary,
}

impl Encoding {
    /// Stable on-disk tag.
    pub(crate) fn to_tag(self) -> u8 {
        match self {
            Encoding::Plain => 0,
            Encoding::Delta => 1,
            Encoding::Dictionary => 2,
        }
    }

    /// Inverse of [`Encoding::to_tag`].
    pub(crate) fn from_tag(tag: u8) -> Result<Self> {
        match tag {
            0 => Ok(Encoding::Plain),
            1 => Ok(Encoding::Delta),
            2 => Ok(Encoding::Dictionary),
            other => {
                Err(ColumnarError::CorruptFile { detail: format!("unknown encoding tag {other}") })
            }
        }
    }

    /// Name for diagnostics.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Encoding::Plain => "plain",
            Encoding::Delta => "delta",
            Encoding::Dictionary => "dictionary",
        }
    }
}

impl std::fmt::Display for Encoding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Picks the cheapest encoding for an integer page by estimating sizes.
///
/// Heuristic, not exact: delta length is estimated from a sample of gaps and
/// dictionary length from distinct-value counting. Plain is the fallback.
#[must_use]
pub fn choose_i64_encoding(values: &[i64]) -> Encoding {
    if values.is_empty() {
        return Encoding::Plain;
    }
    let plain_len = values.len() * 8;

    let delta_len: usize = {
        let mut total = 1 + varint::encoded_len_u64(varint::zigzag_encode(values[0]));
        for w in values.windows(2) {
            total += varint::encoded_len_u64(varint::zigzag_encode(w[1].wrapping_sub(w[0])));
        }
        total
    };

    let dict_len = dictionary::estimated_len(values);

    if dict_len <= delta_len && dict_len < plain_len {
        Encoding::Dictionary
    } else if delta_len < plain_len {
        Encoding::Delta
    } else {
        Encoding::Plain
    }
}

/// Encodes an integer slice with the given encoding, appending to `out`.
pub fn encode_i64(encoding: Encoding, values: &[i64], out: &mut Vec<u8>) {
    match encoding {
        Encoding::Plain => plain::encode_i64(values, out),
        Encoding::Delta => delta::encode_i64(values, out),
        Encoding::Dictionary => dictionary::encode_i64(values, out),
    }
}

/// Decodes `count` integers written by [`encode_i64`].
///
/// # Errors
///
/// Propagates decode errors; returns [`ColumnarError::CountMismatch`] when the
/// self-describing encodings disagree with `count`.
pub fn decode_i64(
    encoding: Encoding,
    buf: &[u8],
    pos: &mut usize,
    count: usize,
) -> Result<Vec<i64>> {
    let values = match encoding {
        Encoding::Plain => plain::decode_i64(buf, pos, count)?,
        Encoding::Delta => delta::decode_i64(buf, pos)?,
        Encoding::Dictionary => dictionary::decode_i64(buf, pos)?,
    };
    if values.len() != count {
        return Err(ColumnarError::CountMismatch { declared: count, actual: values.len() });
    }
    Ok(values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_roundtrip() {
        for e in [Encoding::Plain, Encoding::Delta, Encoding::Dictionary] {
            assert_eq!(Encoding::from_tag(e.to_tag()).unwrap(), e);
        }
        assert!(Encoding::from_tag(200).is_err());
    }

    #[test]
    fn chooser_prefers_dictionary_for_low_cardinality() {
        let values: Vec<i64> = (0..4096).map(|i| (i % 8) as i64 * 1_000_003).collect();
        assert_eq!(choose_i64_encoding(&values), Encoding::Dictionary);
    }

    #[test]
    fn chooser_prefers_delta_for_monotonic() {
        let values: Vec<i64> = (0..4096).map(|i| i * 17).collect();
        assert_eq!(choose_i64_encoding(&values), Encoding::Delta);
    }

    #[test]
    fn chooser_falls_back_to_plain_for_noise() {
        // Large pseudo-random 63-bit values: no structure to exploit.
        let mut x = 0x9e3779b97f4a7c15u64;
        let values: Vec<i64> = (0..512)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 1) as i64 * if x & 1 == 0 { 1 } else { -1 }
            })
            .collect();
        assert_eq!(choose_i64_encoding(&values), Encoding::Plain);
    }

    #[test]
    fn all_encodings_roundtrip_same_data() {
        let values: Vec<i64> = (0..1000).map(|i| (i % 50) * 3 - 20).collect();
        for e in [Encoding::Plain, Encoding::Delta, Encoding::Dictionary] {
            let mut buf = Vec::new();
            encode_i64(e, &values, &mut buf);
            let mut pos = 0;
            assert_eq!(decode_i64(e, &buf, &mut pos, values.len()).unwrap(), values, "{e}");
        }
    }

    #[test]
    fn count_mismatch_detected() {
        let mut buf = Vec::new();
        encode_i64(Encoding::Delta, &[1, 2, 3], &mut buf);
        let mut pos = 0;
        assert!(matches!(
            decode_i64(Encoding::Delta, &buf, &mut pos, 4),
            Err(ColumnarError::CountMismatch { .. })
        ));
    }
}
