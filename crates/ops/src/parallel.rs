//! Multi-worker host execution: the software architecture of Section II-D.
//!
//! [`run_workers`] is now a thin wrapper over the streaming executor
//! ([`crate::stream`]): workers produce mini-batches into a bounded channel,
//! the wrapper drains the channel through the order-restoring adapter into a
//! `Vec`, and the output is bit-identical to serial execution. Callers that
//! want batches *as they complete* — the real producer–consumer shape, where
//! the trainer overlaps with preprocessing — should spawn a
//! [`crate::BatchStream`] (or any fleet) through the unified
//! [`crate::FleetConfig`] API directly.
//!
//! [`run_workers_materialized`] preserves the previous architecture (shared
//! ticket counter, results collected under one mutex, nothing visible until
//! every partition is done). It exists as the ablation baseline for
//! `benches/stream.rs` and the `ablation-stream` binary, which quantify what
//! streaming + double-buffered Extract buys over it.

use crate::executor::{preprocess_partition_with, PreprocessError, ScratchSpace};
use crate::minibatch::MiniBatch;
use crate::plan::PreprocessPlan;
use crate::stream::{BatchStream, FleetConfig};
use presto_datagen::Partition;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Outcome of a parallel preprocessing run.
#[derive(Debug)]
pub struct ParallelReport {
    /// Produced mini-batches, ordered by partition index.
    pub batches: Vec<MiniBatch>,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Number of workers used.
    pub workers: usize,
}

impl ParallelReport {
    /// Aggregate throughput in samples per second.
    #[must_use]
    pub fn samples_per_sec(&self) -> f64 {
        let rows: usize = self.batches.iter().map(MiniBatch::rows).sum();
        rows as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }
}

/// Preprocesses all `partitions` using `workers` streaming pipelines and
/// collects the mini-batches in partition order.
///
/// Equivalent to draining
/// [`BatchStream::spawn`]`(..).into_ordered()`
/// with a channel capacity of `2 × workers`.
///
/// # Errors
///
/// Returns the first worker error encountered; remaining work is abandoned
/// (producers observe the stop flag within one partition).
///
/// # Panics
///
/// Panics if a worker thread itself panics.
pub fn run_workers(
    plan: &PreprocessPlan,
    partitions: &[Partition],
    workers: usize,
) -> Result<ParallelReport, PreprocessError> {
    let workers = workers.max(1).min(partitions.len().max(1));
    let start = Instant::now();
    let stream = BatchStream::spawn(plan, partitions, &FleetConfig::new(workers, workers * 2));
    let mut batches = Vec::with_capacity(partitions.len());
    for item in stream.into_ordered() {
        batches.push(item?.batch);
    }
    Ok(ParallelReport { batches, elapsed: start.elapsed(), workers })
}

/// The pre-streaming execution strategy: workers pull partition indices from
/// one shared atomic ticket and store whole mini-batches under a mutex;
/// nothing is visible to the caller until the last partition finishes.
///
/// Kept as the measured baseline for the streaming ablations — it answers
/// "what did per-worker output channels, double-buffered Extract and
/// device-affine sharding actually buy?" in `benches/stream.rs`. Output is
/// bit-identical to [`run_workers`].
///
/// # Errors
///
/// Returns the first worker error encountered; remaining work is abandoned.
///
/// # Panics
///
/// Panics if a worker thread itself panics.
pub fn run_workers_materialized(
    plan: &PreprocessPlan,
    partitions: &[Partition],
    workers: usize,
) -> Result<ParallelReport, PreprocessError> {
    let workers = workers.max(1).min(partitions.len().max(1));
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<MiniBatch>>> = Mutex::new(vec![None; partitions.len()]);
    // Workers poll the lock-free flag on their hot loop; the mutex exists
    // only to store the error object itself on the (rare) failure path.
    let stop = AtomicBool::new(false);
    let first_error: Mutex<Option<PreprocessError>> = Mutex::new(None);

    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // One scratch per worker: every partition after the first
                // reuses the same Extract buffer and transform pools.
                let mut scratch = ScratchSpace::new();
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= partitions.len() || stop.load(Ordering::Relaxed) {
                        return;
                    }
                    match preprocess_partition_with(
                        plan,
                        partitions[idx].blob.clone(),
                        &mut scratch,
                    ) {
                        Ok((mb, _)) => {
                            results.lock().expect("result lock")[idx] = Some(mb);
                        }
                        Err(e) => {
                            let mut slot = first_error.lock().expect("error lock");
                            if slot.is_none() {
                                *slot = Some(e);
                            }
                            stop.store(true, Ordering::Relaxed);
                            return;
                        }
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed();

    if let Some(e) = first_error.into_inner().expect("error lock") {
        return Err(e);
    }
    let batches: Vec<MiniBatch> = results
        .into_inner()
        .expect("result lock")
        .into_iter()
        .map(|b| b.expect("all partitions processed"))
        .collect();
    Ok(ParallelReport { batches, elapsed, workers })
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_datagen::{Dataset, RmConfig};

    fn tiny_dataset(partitions: usize) -> (RmConfig, Dataset) {
        let mut c = RmConfig::rm1();
        c.batch_size = 32;
        let ds = Dataset::generate(&c, partitions, 32, 2, 11).unwrap();
        (c, ds)
    }

    #[test]
    fn parallel_matches_serial() {
        let (c, ds) = tiny_dataset(6);
        let plan = PreprocessPlan::from_config(&c, 1).unwrap();
        let serial = run_workers(&plan, ds.partitions(), 1).unwrap();
        let parallel = run_workers(&plan, ds.partitions(), 4).unwrap();
        assert_eq!(serial.batches, parallel.batches);
        assert_eq!(parallel.workers, 4);
    }

    #[test]
    fn streaming_wrapper_matches_materialized_baseline() {
        let (c, ds) = tiny_dataset(7);
        let plan = PreprocessPlan::from_config(&c, 1).unwrap();
        let streamed = run_workers(&plan, ds.partitions(), 3).unwrap();
        let materialized = run_workers_materialized(&plan, ds.partitions(), 3).unwrap();
        assert_eq!(streamed.batches, materialized.batches);
    }

    #[test]
    fn output_order_follows_partition_index() {
        let (c, ds) = tiny_dataset(5);
        let plan = PreprocessPlan::from_config(&c, 1).unwrap();
        let report = run_workers(&plan, ds.partitions(), 3).unwrap();
        assert_eq!(report.batches.len(), 5);
        for mb in &report.batches {
            assert_eq!(mb.rows(), 32);
        }
    }

    #[test]
    fn worker_count_is_clamped() {
        let (c, ds) = tiny_dataset(2);
        let plan = PreprocessPlan::from_config(&c, 1).unwrap();
        let report = run_workers(&plan, ds.partitions(), 64).unwrap();
        assert_eq!(report.workers, 2);
        let report = run_workers(&plan, ds.partitions(), 0).unwrap();
        assert_eq!(report.workers, 1);
    }

    #[test]
    fn throughput_is_positive() {
        let (c, ds) = tiny_dataset(3);
        let plan = PreprocessPlan::from_config(&c, 1).unwrap();
        let report = run_workers(&plan, ds.partitions(), 2).unwrap();
        assert!(report.samples_per_sec() > 0.0);
    }

    #[test]
    fn corrupted_partition_surfaces_error() {
        let mut c = RmConfig::rm1();
        c.batch_size = 16;
        let ds = Dataset::generate(&c, 3, 16, 1, 1).unwrap();
        let plan = PreprocessPlan::from_config(&c, 1).unwrap();
        // Truncate one partition's blob.
        let mut partitions = ds.partitions().to_vec();
        let bytes = partitions[1].blob.as_bytes().to_vec();
        partitions[1].blob = presto_columnar::MemBlob::new(bytes[..bytes.len() / 2].to_vec());
        assert!(run_workers(&plan, &partitions, 2).is_err());
        assert!(run_workers_materialized(&plan, &partitions, 2).is_err());
    }
}
