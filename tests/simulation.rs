//! Integration tests of the simulation stack: provisioning feeds the
//! pipeline, the pipeline respects physics, and the managers close the
//! loop (Fig. 9 end to end).

use presto::core::pipeline::{simulate, PipelineConfig};
use presto::core::provision::Provisioner;
use presto::core::systems::System;
use presto::core::{Backend, PreprocessManager, TrainManager, TrainingJob};
use presto::datagen::RmConfig;
use presto::hwsim::gpu::GpuTrainModel;

#[test]
fn provisioned_systems_reach_high_utilization_for_every_model() {
    let tm = TrainManager::new();
    for config in RmConfig::all() {
        let job = TrainingJob { config: config.clone(), num_gpus: 8, batches: 64 };
        for backend in [Backend::DisaggCpu, Backend::PrestoSmartSsd] {
            let report = tm.launch(&job, &PreprocessManager::new(backend));
            assert!(
                report.pipeline.gpu_utilization > 0.85,
                "{} {:?}: utilization {:.2}",
                config.name,
                backend,
                report.pipeline.gpu_utilization
            );
        }
    }
}

#[test]
fn under_provisioning_shows_up_as_starvation() {
    let tm = TrainManager::new();
    let job = TrainingJob { config: RmConfig::rm5(), num_gpus: 8, batches: 48 };
    let full = tm.launch(&job, &PreprocessManager::new(Backend::PrestoSmartSsd));
    // Halve the fleet manually and re-simulate.
    let gpu = GpuTrainModel::a100();
    let halved = System::presto_smartssd((full.provision.devices / 2).max(1));
    let starved = simulate(
        &halved,
        &gpu,
        &RmConfig::rm5(),
        &PipelineConfig { batches: 48, queue_capacity: 8, num_gpus: 8 },
    );
    assert!(
        starved.gpu_utilization < full.pipeline.gpu_utilization,
        "halved fleet {:.2} vs full {:.2}",
        starved.gpu_utilization,
        full.pipeline.gpu_utilization
    );
}

#[test]
fn utilization_is_always_a_fraction() {
    let gpu = GpuTrainModel::a100();
    for workers in [1usize, 3, 17, 100] {
        for queue in [1usize, 4, 64] {
            let report = simulate(
                &System::disagg(workers),
                &gpu,
                &RmConfig::rm2(),
                &PipelineConfig { batches: 24, queue_capacity: queue, num_gpus: 2 },
            );
            assert!((0.0..=1.0).contains(&report.gpu_utilization));
            assert_eq!(report.batches_trained, 24);
            assert!(report.peak_queue <= queue + 1);
            assert!(report.makespan.seconds() > 0.0);
        }
    }
}

#[test]
fn provisioner_and_managers_agree() {
    let p = Provisioner::poc();
    let tm = TrainManager::new();
    let pm = PreprocessManager::new(Backend::DisaggCpu);
    for config in RmConfig::all() {
        let job = TrainingJob { config: config.clone(), num_gpus: 8, batches: 1 };
        let demand = tm.measure_training_demand(&job);
        let outcome = pm.provision(&config, demand);
        assert_eq!(
            outcome.devices,
            p.cpu_cores_required(&config, 8),
            "{}: manager and provisioner disagree",
            config.name
        );
    }
}

#[test]
fn presto_fleet_is_two_orders_smaller_than_cpu_fleet() {
    let p = Provisioner::poc();
    for config in RmConfig::all() {
        let cores = p.cpu_cores_required(&config, 8);
        let units = p.isp_units_required(&config, 8);
        assert!(cores >= 30 * units, "{}: {cores} cores vs {units} units", config.name);
    }
}

#[test]
fn simulation_is_deterministic() {
    let gpu = GpuTrainModel::a100();
    let cfg = PipelineConfig { batches: 32, queue_capacity: 8, num_gpus: 4 };
    let a = simulate(&System::presto_smartssd(3), &gpu, &RmConfig::rm3(), &cfg);
    let b = simulate(&System::presto_smartssd(3), &gpu, &RmConfig::rm3(), &cfg);
    assert_eq!(a, b);
}
