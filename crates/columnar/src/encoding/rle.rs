//! Hybrid run-length / bit-packed encoding for unsigned integers.
//!
//! The stream is a sequence of runs. Each run starts with a varint header:
//! the low bit selects the run kind, the remaining bits carry the length.
//!
//! * `header & 1 == 0`: **RLE run** — `header >> 1` repetitions of a single
//!   value stored once, bit-packed at the stream's bit width (rounded up to a
//!   whole byte count for that one value).
//! * `header & 1 == 1`: **literal run** — `header >> 1` values bit-packed
//!   back to back.
//!
//! The stream is prefixed by one byte holding the bit width. This mirrors
//! Parquet's RLE/bit-packing hybrid, which TorchArrow reads when extracting
//! features, so the decode cost modeled by `presto-hwsim` corresponds to real
//! work performed here.

use super::{bitpack, varint};
use crate::error::{ColumnarError, Result};

/// Minimum repetitions before the encoder switches to an RLE run.
const MIN_RLE_RUN: usize = 4;

/// Encodes `values` into `out` using the hybrid RLE/bit-pack scheme.
///
/// The bit width is chosen from the maximum value present.
pub fn encode(values: &[u64], out: &mut Vec<u8>) {
    let max = values.iter().copied().max().unwrap_or(0);
    let width = bitpack::width_for(max);
    out.push(width as u8);
    varint::write_u64(out, values.len() as u64);

    let mut i = 0;
    let mut literal_start = 0;
    while i < values.len() {
        // Measure the run of equal values starting at i.
        let run_val = values[i];
        let mut run_len = 1;
        while i + run_len < values.len() && values[i + run_len] == run_val {
            run_len += 1;
        }
        if run_len >= MIN_RLE_RUN {
            flush_literals(&values[literal_start..i], width, out);
            write_rle_run(run_val, run_len, width, out);
            i += run_len;
            literal_start = i;
        } else {
            i += run_len;
        }
    }
    flush_literals(&values[literal_start..], width, out);
}

fn flush_literals(values: &[u64], width: u32, out: &mut Vec<u8>) {
    if values.is_empty() {
        return;
    }
    varint::write_u64(out, ((values.len() as u64) << 1) | 1);
    // Infallible: width was derived from the global maximum.
    bitpack::pack(values, width, out).expect("literal values fit chosen width");
}

fn write_rle_run(value: u64, len: usize, width: u32, out: &mut Vec<u8>) {
    varint::write_u64(out, (len as u64) << 1);
    if width > 0 {
        let byte_len = (width as usize).div_ceil(8);
        out.extend_from_slice(&value.to_le_bytes()[..byte_len]);
    }
}

/// Decodes a stream produced by [`encode`].
///
/// Preallocation is clamped to what the remaining input could describe
/// (at most 8 values per byte once the run framing is paid), so a corrupt
/// count cannot force an oversized reservation.
///
/// # Errors
///
/// Returns [`ColumnarError::UnexpectedEof`] on truncated input and
/// [`ColumnarError::CountMismatch`] when the run headers disagree with the
/// declared value count.
pub fn decode(buf: &[u8], pos: &mut usize) -> Result<Vec<u64>> {
    let mut values = Vec::new();
    decode_into(buf, pos, None, &mut values)?;
    Ok(values)
}

/// Like [`decode`], appending into a caller-owned buffer.
///
/// With `expected = Some(n)` the stream's declared count must equal `n`
/// (checked before any allocation) — the page reader passes its row count
/// here, so a corrupt length stream errors instead of materializing.
///
/// # Errors
///
/// Same as [`decode`], plus [`ColumnarError::CountMismatch`] when the
/// declared count disagrees with `expected`.
pub fn decode_into(
    buf: &[u8],
    pos: &mut usize,
    expected: Option<usize>,
    values: &mut Vec<u64>,
) -> Result<()> {
    let Some(&width) = buf.get(*pos) else {
        return Err(ColumnarError::UnexpectedEof { context: "rle bit width" });
    };
    *pos += 1;
    let width = u32::from(width);
    if width > 64 {
        return Err(ColumnarError::ValueOutOfRange {
            detail: format!("rle bit width {width} exceeds 64"),
        });
    }
    let count = varint::read_u64(buf, pos)? as usize;
    match expected {
        Some(expected) => {
            if count != expected {
                return Err(ColumnarError::CountMismatch { declared: expected, actual: count });
            }
        }
        // No caller-known count: RLE expands (zero-width runs consume no
        // input), so only the global page ceiling bounds growth.
        None => {
            if count > super::MAX_PAGE_ELEMENTS {
                return Err(ColumnarError::CorruptFile {
                    detail: format!("rle stream declares {count} values"),
                });
            }
        }
    }
    values.reserve(count.min(buf.len().saturating_sub(*pos).saturating_mul(8).max(64)));
    let base = values.len();
    decode_runs(buf, pos, width, count, base, values)
}

/// Run-decoding core shared by [`decode`] and [`decode_into`]; `base` is
/// the output length before this stream's values.
fn decode_runs(
    buf: &[u8],
    pos: &mut usize,
    width: u32,
    count: usize,
    base: usize,
    values: &mut Vec<u64>,
) -> Result<()> {
    while values.len() - base < count {
        let header = varint::read_u64(buf, pos)?;
        let len = (header >> 1) as usize;
        if len == 0 {
            return Err(ColumnarError::CorruptFile { detail: "zero-length rle run".into() });
        }
        if values.len() - base + len > count {
            return Err(ColumnarError::CountMismatch {
                declared: count,
                actual: values.len() - base + len,
            });
        }
        if header & 1 == 1 {
            bitpack::unpack_into(buf, pos, len, width, values)?;
        } else {
            let value = if width == 0 {
                0
            } else {
                let byte_len = (width as usize).div_ceil(8);
                if buf.len() < *pos + byte_len {
                    return Err(ColumnarError::UnexpectedEof { context: "rle run value" });
                }
                let mut raw = [0u8; 8];
                raw[..byte_len].copy_from_slice(&buf[*pos..*pos + byte_len]);
                *pos += byte_len;
                u64::from_le_bytes(raw)
            };
            values.extend(std::iter::repeat_n(value, len));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[u64]) -> usize {
        let mut buf = Vec::new();
        encode(values, &mut buf);
        let mut pos = 0;
        let back = decode(&buf, &mut pos).unwrap();
        assert_eq!(back, values);
        assert_eq!(pos, buf.len());
        buf.len()
    }

    #[test]
    fn roundtrip_empty() {
        roundtrip(&[]);
    }

    #[test]
    fn roundtrip_all_equal_compresses() {
        let values = vec![7u64; 10_000];
        let len = roundtrip(&values);
        // One width byte + count varint + one run header + one value byte.
        assert!(len < 16, "10k identical values took {len} bytes");
    }

    #[test]
    fn roundtrip_all_distinct() {
        let values: Vec<u64> = (0..1000).collect();
        roundtrip(&values);
    }

    #[test]
    fn roundtrip_mixed_runs_and_literals() {
        let mut values = Vec::new();
        for i in 0..50u64 {
            values.push(i);
            values.extend(std::iter::repeat_n(i % 3, (i % 7) as usize));
        }
        roundtrip(&values);
    }

    #[test]
    fn roundtrip_zeros_are_tiny() {
        let values = vec![0u64; 4096];
        let len = roundtrip(&values);
        assert!(len <= 8, "4k zeros took {len} bytes");
    }

    #[test]
    fn roundtrip_large_values() {
        roundtrip(&[u64::MAX, u64::MAX, u64::MAX, u64::MAX, 1, 2, 3]);
    }

    #[test]
    fn truncation_detected() {
        let mut buf = Vec::new();
        encode(&[1, 2, 3, 4, 5, 5, 5, 5, 5, 5], &mut buf);
        for cut in 1..buf.len() {
            let mut pos = 0;
            assert!(decode(&buf[..cut], &mut pos).is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn decode_into_enforces_expected_count() {
        let mut buf = Vec::new();
        encode(&[1, 2, 3, 4], &mut buf);
        let mut out = Vec::new();
        let mut pos = 0;
        assert!(matches!(
            decode_into(&buf, &mut pos, Some(5), &mut out),
            Err(ColumnarError::CountMismatch { .. })
        ));
        assert!(out.is_empty());
        let mut pos = 0;
        decode_into(&buf, &mut pos, Some(4), &mut out).unwrap();
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn zero_width_allocation_bomb_is_rejected() {
        // Regression: width-0 runs consume no input, so a crafted count of
        // 2^40 with one matching run header used to materialize terabytes
        // of zeros. The page-element ceiling now rejects the count.
        let mut bomb = vec![0u8]; // width 0
        varint::write_u64(&mut bomb, 1u64 << 40); // count
        varint::write_u64(&mut bomb, (1u64 << 40) << 1); // one RLE run
        let mut pos = 0;
        assert!(matches!(decode(&bomb, &mut pos), Err(ColumnarError::CorruptFile { .. })));
        // With a caller-expected count the mismatch fires first.
        let mut out = Vec::new();
        let mut pos = 0;
        assert!(decode_into(&bomb, &mut pos, Some(8), &mut out).is_err());
        assert!(out.is_empty());
    }

    #[test]
    fn corrupt_count_cannot_over_reserve() {
        // Width byte + varint count of u64::MAX and no run data: capacity
        // stays bounded by the (tiny) remaining input and decode errors.
        let mut buf = vec![1u8];
        varint::write_u64(&mut buf, u64::MAX);
        let mut out = Vec::new();
        let mut pos = 0;
        assert!(decode_into(&buf, &mut pos, None, &mut out).is_err());
        assert!(out.capacity() <= 64);
    }

    #[test]
    fn short_runs_stay_literal() {
        // Runs of length 3 are below MIN_RLE_RUN; stream must still roundtrip.
        let values = [9, 9, 9, 1, 2, 2, 2, 3];
        roundtrip(&values);
    }
}
