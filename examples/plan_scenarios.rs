//! Non-canonical preprocessing scenarios end to end: compile operator
//! graphs beyond the paper's fixed SigridHash/Bucketize/LogNorm triple and
//! run them through *both* fleets — the host CPU streaming executor and
//! the emulated in-storage (ISP) workers — verifying bit-identical output,
//! then ask the placement cost model where each stage should run.
//!
//! Scenarios (on RM1-L, the RM1 variant with production-shaped sparse
//! lists):
//!
//! * **canonical** — the paper's fixed pipeline, as a graph.
//! * **truncated-cross** — every sparse list truncated to its first 4 ids
//!   (FirstX), then hashed, plus a pairwise n-gram feature cross per
//!   sparse feature — the RM-variant shape of Meta's ingestion study.
//! * **remapped** — sparse ids through a bounded dictionary (MapId) before
//!   hashing; generated features remapped into a smaller table.
//!
//! Run with: `cargo run --release --example plan_scenarios`
//! `PRESTO_SCENARIO_ROWS` / `PRESTO_SCENARIO_PARTITIONS` shrink the run
//! (CI uses tiny values to catch example rot cheaply).

use presto::core::placement::{place_stages, OpCostModel};
use presto::core::IspBatchStream;
use presto::datagen::{Dataset, RmConfig};
use presto::hwsim::fpga::IspModel;
use presto::ops::{
    preprocess_partition, BatchStream, FleetConfig, MiniBatch, PlanGraph, PreprocessPlan,
};
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rows = env_usize("PRESTO_SCENARIO_ROWS", 2048);
    let partitions = env_usize("PRESTO_SCENARIO_PARTITIONS", 8);
    let mut config = RmConfig::rm1_lists();
    config.batch_size = rows;
    println!(
        "model {}: {} dense + {} sparse (avg len {}) + {} generated, {partitions} x {rows} rows",
        config.name,
        config.num_dense,
        config.num_sparse,
        config.avg_sparse_len,
        config.num_generated
    );
    let dataset = Dataset::generate(&config, partitions, rows, 2, 2024)?;

    let scenarios: Vec<(&str, PlanGraph)> = vec![
        ("canonical", PlanGraph::canonical(&config, 7)?),
        ("truncated-cross", PlanGraph::truncated_cross(&config, 7, 4, 2)?),
        ("remapped", PlanGraph::remapped(&config, 7, 4096)?),
    ];

    for (name, graph) in scenarios {
        let plan = PreprocessPlan::compile(graph, &config)?;
        println!(
            "\n=== scenario {name}: {} stages, {} emitted features, {} projected columns",
            plan.stages().len(),
            plan.emitted_dense().len() + plan.emitted_lists().len() + plan.emitted_ids().len(),
            plan.required_columns().len()
        );

        // Serial reference.
        let serial: Vec<MiniBatch> = dataset
            .partitions()
            .iter()
            .map(|p| preprocess_partition(&plan, p.blob.clone()).map(|(mb, _)| mb))
            .collect::<Result<_, _>>()?;

        // Host CPU streaming fleet.
        let t0 = Instant::now();
        let cpu: Vec<MiniBatch> =
            BatchStream::spawn(&plan, dataset.partitions(), &FleetConfig::new(2, 4))
                .into_ordered()
                .map(|item| item.map(|b| b.batch))
                .collect::<Result<_, _>>()?;
        let cpu_time = t0.elapsed();
        assert_eq!(cpu, serial, "{name}: CPU stream must match serial");

        // In-storage fleet (emulated ISP units, chunked through on-chip
        // feature buffers).
        let t0 = Instant::now();
        let mut isp_stream =
            IspBatchStream::spawn(&plan, dataset.partitions(), &FleetConfig::new(2, 4));
        let mut isp: Vec<(usize, MiniBatch)> = Vec::new();
        for item in isp_stream.by_ref() {
            let b = item?;
            isp.push((b.partition, b.batch));
        }
        let isp_time = t0.elapsed();
        let p2p = isp_stream.p2p_bytes();
        isp.sort_by_key(|(p, _)| *p);
        let isp: Vec<MiniBatch> = isp.into_iter().map(|(_, b)| b).collect();
        assert_eq!(isp, serial, "{name}: ISP fleet must match serial");

        let total_rows = (partitions * rows) as f64;
        println!(
            "  CPU fleet  : {:>8.1} ms ({:.0} rows/s), bit-identical to serial",
            cpu_time.as_secs_f64() * 1e3,
            total_rows / cpu_time.as_secs_f64()
        );
        println!(
            "  ISP fleet  : {:>8.1} ms ({:.0} rows/s), {:.1} KiB over P2P, bit-identical",
            isp_time.as_secs_f64() * 1e3,
            total_rows / isp_time.as_secs_f64(),
            p2p as f64 / 1024.0
        );

        // Where should each stage run? Price the plan on a SmartSSD.
        let placement = place_stages(&plan, rows, &OpCostModel::analytic(&IspModel::smartssd()));
        println!(
            "  placement  : {}/{} stages offloaded to ISP, projected transform speedup {:.2}x",
            placement.offloaded(),
            placement.stages.len(),
            placement.speedup()
        );
        let mut heaviest: Vec<_> = placement.stages.iter().collect();
        heaviest.sort_by_key(|s| std::cmp::Reverse(s.elements));
        for s in heaviest.iter().take(4) {
            println!(
                "    {:<12} {:<28} {:>9} elems  host {:>10}  isp {:<10}  -> {}",
                s.output,
                s.ops,
                s.elements,
                s.host.to_string(),
                s.isp.map_or("n/a".into(), |c| c.to_string()),
                s.place
            );
        }
        if placement.stages.len() > 4 {
            println!("    ... ({} more stages)", placement.stages.len() - 4);
        }
    }
    println!("\nall scenarios produced bit-identical output on both fleets");
    Ok(())
}
