//! Quickstart: generate RecSys data, store it columnar, preprocess it into
//! a train-ready mini-batch — the full functional path of the paper's
//! Extract → Transform → Load pipeline on your own machine.
//!
//! Run with: `cargo run --example quickstart`
//!
//! `PRESTO_QUICKSTART_ROWS` overrides the partition size (default 4096) —
//! CI runs the example with a tiny value to catch example rot cheaply.

use presto::columnar::FileReader;
use presto::datagen::{generate_batch, write_partition, RmConfig};
use presto::ops::{preprocess_partition, PreprocessPlan};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Configure: RM1 is the public-Criteo shape (Table I of the paper).
    let mut config = RmConfig::rm1();
    config.batch_size =
        std::env::var("PRESTO_QUICKSTART_ROWS").ok().and_then(|v| v.parse().ok()).unwrap_or(4096);
    println!(
        "model {}: {} dense, {} sparse, {} generated features, batch {}",
        config.name, config.num_dense, config.num_sparse, config.num_generated, config.batch_size
    );

    // 2. Generate one partition of raw feature data and serialize it into
    //    the columnar format a storage device would hold.
    let raw = generate_batch(&config, config.batch_size, 42);
    let blob = write_partition(&raw)?;
    println!(
        "partition: {} rows, {:.1} KiB in memory -> {:.1} KiB columnar ({:.2}x compression)",
        raw.rows(),
        raw.byte_size() as f64 / 1024.0,
        blob.as_bytes().len() as f64 / 1024.0,
        raw.byte_size() as f64 / blob.as_bytes().len() as f64
    );

    // 3. Selective extraction: the columnar reader fetches exactly the
    //    columns a plan needs (no overfetch — Section II-B of the paper).
    let reader = FileReader::open(blob.clone())?;
    let one = reader.read_projected(0, &["sparse_3"])?;
    println!("projected read of sparse_3: {} lists", one[0].len());

    // 4. Preprocess: Bucketize + SigridHash + Log + format conversion.
    let plan = PreprocessPlan::from_config(&config, 7)?;
    let (mini_batch, timings) = preprocess_partition(&plan, blob)?;
    println!(
        "train-ready mini-batch: {} samples, dense {}x{}, {} jagged features, {:.1} KiB",
        mini_batch.rows(),
        mini_batch.dense().rows(),
        mini_batch.dense().cols(),
        mini_batch.sparse().len(),
        mini_batch.byte_size() as f64 / 1024.0
    );
    println!(
        "host timings: extract {:?}, bucketize {:?}, sigridhash {:?}, log {:?}, format {:?}",
        timings.extract,
        timings.bucketize(),
        timings.sigridhash(),
        timings.log(),
        timings.format
    );

    // 5. Inspect one sample end to end.
    let row = 0;
    println!(
        "sample 0: label={}, dense[0..4]={:?}, {}[0]={:?}",
        mini_batch.labels()[row],
        &mini_batch.dense().row(row)[..4.min(mini_batch.dense().cols())],
        mini_batch.sparse()[0].name,
        mini_batch.sparse()[0].row(row),
    );
    Ok(())
}
