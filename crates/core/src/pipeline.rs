//! End-to-end training-pipeline simulation (Fig. 9's producer–consumer
//! loop), driven by the discrete-event engine.
//!
//! Preprocessing workers independently produce mini-batches into the train
//! manager's bounded input queue; the GPU trainer consumes them. The
//! simulation reports GPU utilization, queue occupancy and makespan — the
//! quantities behind Fig. 3.
//!
//! Two arrival models drive the producer side:
//!
//! * [`simulate`] — the analytic model: every worker produces at its
//!   steady-state per-worker throughput ([`System::per_worker_throughput`]).
//! * [`simulate_measured`] — the calibration hook: replay a *measured*
//!   inter-arrival process, e.g. the consumer-side gaps recorded from a
//!   real `presto_ops::stream::BatchStream` run, so the simulated trainer
//!   is driven by the executor actually built in this repo rather than an
//!   idealized rate.
//!
//! The *executable* counterpart of the simulation is the [`Trainer`]: a
//! real consumer that pulls mini-batches off a [`BatchSource`] (the host
//! streaming executor or the ISP emulation), spends calibrated per-batch
//! compute on each ([`TrainerConfig::for_model`]), and reports
//! consumer-side goodput, stall time and queue-occupancy histograms. Its
//! measured inter-arrival trace feeds [`simulate_measured`]
//! ([`TrainerReport::replay`]), closing the loop between the built system
//! and the model.

use presto_datagen::{RmConfig, WorkloadProfile};
use presto_hwsim::event::EventQueue;
use presto_hwsim::gpu::GpuTrainModel;
use presto_hwsim::units::Secs;
use presto_ops::executor::PreprocessError;
use presto_ops::recovery::RunReport;
use presto_ops::shuffle::ShuffledStream;
use presto_ops::stream::{inter_arrivals, BatchStream, StreamStats, StreamedBatch};
use std::time::{Duration, Instant};

use crate::systems::System;

/// Configuration of one simulated run.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Mini-batches to train before stopping.
    pub batches: usize,
    /// Input-queue capacity (mini-batches); producers stall when full.
    pub queue_capacity: usize,
    /// Number of GPUs consuming batches.
    pub num_gpus: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig { batches: 64, queue_capacity: 8, num_gpus: 1 }
    }
}

/// Result of a simulated run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineReport {
    /// Total simulated wall-clock time.
    pub makespan: Secs,
    /// Time the GPUs spent actually training.
    pub gpu_busy: Secs,
    /// GPU utilization in `[0, 1]` (busy time over `num_gpus × makespan`).
    pub gpu_utilization: f64,
    /// Mini-batches trained.
    pub batches_trained: usize,
    /// Effective end-to-end training throughput, samples/sec.
    pub training_throughput: f64,
    /// Peak input-queue occupancy observed.
    pub peak_queue: usize,
}

#[derive(Debug)]
enum Event {
    /// A preprocessing worker finished a mini-batch.
    BatchReady { worker: usize },
    /// A GPU finished training a mini-batch.
    GpuDone { gpu: usize },
}

/// Simulates `config.batches` mini-batches flowing through `system` into
/// `gpu` trainers.
///
/// Producers are modeled at their steady-state per-worker throughput;
/// trainers at their per-step time. The bounded queue applies back-pressure:
/// a worker with a ready batch waits for space before starting its next one.
#[must_use]
pub fn simulate(
    system: &System,
    gpu: &GpuTrainModel,
    model: &RmConfig,
    config: &PipelineConfig,
) -> PipelineReport {
    let profile = WorkloadProfile::from_config(model);
    let workers = system.parallelism().max(1);
    let per_worker = system.per_worker_throughput(&profile);
    let batch_interval = Secs::new(profile.rows as f64 / per_worker);
    let step_time = gpu.step_time(model);
    let num_gpus = config.num_gpus.max(1);

    let mut queue: usize = 0; // ready batches waiting for a GPU
    let mut started = 0usize; // batches whose production has begun
    let mut trained = 0usize;
    // Workers holding a finished batch because the queue is full
    // (a producer blocks on its push, as in the real input queue).
    let mut blocked_workers: Vec<usize> = Vec::new();
    let mut idle_gpus: Vec<usize> = (0..num_gpus).collect();
    let mut gpu_busy = Secs::ZERO;
    let mut peak_queue = 0usize;
    let mut first_arrival: Option<Secs> = None;

    let mut events: EventQueue<Event> = EventQueue::new();
    // Kick off the first wave of production. Workers are staggered across
    // one batch interval, as a running fleet would be — without this the
    // simulation produces artificial arrival bursts.
    for worker in 0..workers {
        if started < config.batches {
            started += 1;
            let offset = batch_interval * (worker as f64 / workers as f64);
            events.schedule_after(batch_interval + offset, Event::BatchReady { worker });
        }
    }

    let start_next = |events: &mut EventQueue<Event>, started: &mut usize, worker: usize| {
        if *started < config.batches {
            *started += 1;
            events.schedule_after(batch_interval, Event::BatchReady { worker });
        }
    };

    while let Some((now, event)) = events.pop() {
        match event {
            Event::BatchReady { worker } => {
                first_arrival.get_or_insert(now);
                if let Some(gpu_id) = idle_gpus.pop() {
                    // Hand straight to an idle GPU, bypassing the queue.
                    gpu_busy += step_time;
                    events.schedule_after(step_time, Event::GpuDone { gpu: gpu_id });
                    start_next(&mut events, &mut started, worker);
                } else if queue < config.queue_capacity {
                    queue += 1;
                    peak_queue = peak_queue.max(queue);
                    start_next(&mut events, &mut started, worker);
                } else {
                    // Queue full: the worker blocks holding its batch.
                    blocked_workers.push(worker);
                }
            }
            Event::GpuDone { gpu: gpu_id } => {
                trained += 1;
                if queue > 0 {
                    queue -= 1;
                    gpu_busy += step_time;
                    events.schedule_after(step_time, Event::GpuDone { gpu: gpu_id });
                    // Space freed: one blocked worker delivers and resumes.
                    if let Some(worker) = blocked_workers.pop() {
                        queue += 1;
                        start_next(&mut events, &mut started, worker);
                    }
                } else if let Some(worker) = blocked_workers.pop() {
                    // Zero-capacity queue: hand the held batch over directly.
                    gpu_busy += step_time;
                    events.schedule_after(step_time, Event::GpuDone { gpu: gpu_id });
                    start_next(&mut events, &mut started, worker);
                } else {
                    idle_gpus.push(gpu_id);
                }
            }
        }
        if trained >= config.batches {
            break;
        }
    }

    let makespan = events.now();
    // Utilization and throughput are measured over the steady window from
    // the first batch arrival (the paper measures a running pipeline, not
    // cold start).
    let window = match first_arrival {
        Some(t) if makespan > t => makespan - t,
        _ => makespan,
    };
    let denom = window.seconds() * num_gpus as f64;
    PipelineReport {
        makespan,
        gpu_busy,
        gpu_utilization: if denom == 0.0 { 0.0 } else { (gpu_busy.seconds() / denom).min(1.0) },
        batches_trained: trained,
        training_throughput: trained as f64 * profile.rows as f64 / window.seconds().max(1e-12),
        peak_queue,
    }
}

/// Simulates `config.batches` mini-batches arriving with the *measured*
/// inter-arrival gaps `inter_arrivals` (replayed cyclically when the run is
/// longer than the recording) flowing into `gpu` trainers.
///
/// The measured process already folds in worker parallelism, Extract
/// overlap and device contention, so it is modeled as one aggregated
/// producer; the bounded queue still applies back-pressure — when it is
/// full the producer holds its batch and the remaining arrivals shift
/// later, exactly like a blocked `send` on the real output channel.
///
/// An empty `inter_arrivals` means "instant arrivals" (a producer that is
/// never the bottleneck).
#[must_use]
pub fn simulate_measured(
    inter_arrivals: &[Duration],
    gpu: &GpuTrainModel,
    model: &RmConfig,
    config: &PipelineConfig,
) -> PipelineReport {
    let profile = WorkloadProfile::from_config(model);
    let step_time = gpu.step_time(model);
    let num_gpus = config.num_gpus.max(1);
    let gaps: Vec<Secs> = if inter_arrivals.is_empty() {
        vec![Secs::ZERO]
    } else {
        inter_arrivals.iter().map(|d| Secs::new(d.as_secs_f64())).collect()
    };

    let mut queue: usize = 0;
    let mut started = 0usize;
    let mut trained = 0usize;
    // The producer holding a finished batch because the queue is full.
    let mut producer_blocked = false;
    let mut idle_gpus: Vec<usize> = (0..num_gpus).collect();
    let mut gpu_busy = Secs::ZERO;
    let mut peak_queue = 0usize;
    let mut first_arrival: Option<Secs> = None;

    let mut events: EventQueue<Event> = EventQueue::new();
    if config.batches > 0 {
        started = 1;
        events.schedule_after(gaps[0], Event::BatchReady { worker: 0 });
    }

    let start_next = |events: &mut EventQueue<Event>, started: &mut usize| {
        if *started < config.batches {
            let gap = gaps[*started % gaps.len()];
            *started += 1;
            events.schedule_after(gap, Event::BatchReady { worker: 0 });
        }
    };

    while let Some((now, event)) = events.pop() {
        match event {
            Event::BatchReady { .. } => {
                first_arrival.get_or_insert(now);
                if let Some(gpu_id) = idle_gpus.pop() {
                    gpu_busy += step_time;
                    events.schedule_after(step_time, Event::GpuDone { gpu: gpu_id });
                    start_next(&mut events, &mut started);
                } else if queue < config.queue_capacity {
                    queue += 1;
                    peak_queue = peak_queue.max(queue);
                    start_next(&mut events, &mut started);
                } else {
                    producer_blocked = true;
                }
            }
            Event::GpuDone { gpu: gpu_id } => {
                trained += 1;
                if queue > 0 {
                    queue -= 1;
                    gpu_busy += step_time;
                    events.schedule_after(step_time, Event::GpuDone { gpu: gpu_id });
                    if producer_blocked {
                        queue += 1;
                        producer_blocked = false;
                        start_next(&mut events, &mut started);
                    }
                } else if producer_blocked {
                    gpu_busy += step_time;
                    events.schedule_after(step_time, Event::GpuDone { gpu: gpu_id });
                    producer_blocked = false;
                    start_next(&mut events, &mut started);
                } else {
                    idle_gpus.push(gpu_id);
                }
            }
        }
        if trained >= config.batches {
            break;
        }
    }

    let makespan = events.now();
    let window = match first_arrival {
        Some(t) if makespan > t => makespan - t,
        _ => makespan,
    };
    let denom = window.seconds() * num_gpus as f64;
    PipelineReport {
        makespan,
        gpu_busy,
        gpu_utilization: if denom == 0.0 { 0.0 } else { (gpu_busy.seconds() / denom).min(1.0) },
        batches_trained: trained,
        training_throughput: trained as f64 * profile.rows as f64 / window.seconds().max(1e-12),
        peak_queue,
    }
}

// ---------------------------------------------------------------------------
// Trainer in the loop: a real consumer for the streaming executor.
// ---------------------------------------------------------------------------

/// How the trainer prices the compute of one mini-batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Compute {
    /// Fixed wall-clock time per mini-batch, whatever its size.
    PerBatch(Duration),
    /// Wall-clock time per sample (per-RM-model calibration: the GPU step
    /// time divided by the model's batch size, so partitions of any size
    /// are priced consistently).
    PerRow(Duration),
}

/// Configuration of a [`Trainer`]: how long the consumer computes on each
/// mini-batch it pulls off the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainerConfig {
    compute: Compute,
}

impl TrainerConfig {
    /// A trainer that consumes batches instantly (measures pure supply).
    #[must_use]
    pub fn instant() -> Self {
        TrainerConfig { compute: Compute::PerBatch(Duration::ZERO) }
    }

    /// A trainer that spends `step` of wall-clock compute per mini-batch.
    #[must_use]
    pub fn per_batch(step: Duration) -> Self {
        TrainerConfig { compute: Compute::PerBatch(step) }
    }

    /// Per-RM-model calibration: prices compute at `gpu.step_time(model) /
    /// model.batch_size` per sample, scaled by `time_scale` (1.0 replays
    /// the A100's real pace; smaller values shrink wall-clock time while
    /// preserving the compute-to-supply ratio). This is what makes trainer
    /// runs on small test partitions comparable to the full-batch analytic
    /// model — and what calibrates [`simulate_measured`] traces per model.
    #[must_use]
    pub fn for_model(gpu: &GpuTrainModel, model: &RmConfig, time_scale: f64) -> Self {
        let per_row =
            gpu.step_time(model).seconds() * time_scale.max(0.0) / model.batch_size.max(1) as f64;
        TrainerConfig { compute: Compute::PerRow(Duration::from_secs_f64(per_row)) }
    }

    /// Compute time charged for a mini-batch of `rows` samples.
    #[must_use]
    pub fn step_for(&self, rows: usize) -> Duration {
        match self.compute {
            Compute::PerBatch(step) => step,
            Compute::PerRow(per_row) => {
                per_row.saturating_mul(u32::try_from(rows).unwrap_or(u32::MAX))
            }
        }
    }
}

/// What the trainer observed while consuming one stream end to end.
///
/// All quantities are **consumer-side**: goodput is rows per second as seen
/// by the trainer, stall is time the trainer sat idle waiting for the
/// producers, and the occupancy histogram samples the bounded channel at
/// every pull. This is the measurement the paper's end-to-end claim is
/// about — a `Vec` drain can report producer throughput, only a consumer
/// can report whether the trainer stayed fed.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainerReport {
    /// Mini-batches trained.
    pub batches: usize,
    /// Samples trained.
    pub rows: usize,
    /// Wall-clock time from starting to consume until the last batch was
    /// trained (includes the pipeline-fill cold start).
    pub elapsed: Duration,
    /// Emulated GPU compute time.
    pub compute: Duration,
    /// Time spent blocked on the stream with an idle trainer (includes the
    /// wait for the first batch).
    pub stall: Duration,
    /// Consumer-side goodput, samples/sec (`rows / elapsed`).
    pub goodput: f64,
    /// Trainer utilization in `[0, 1]`: `compute / (compute + stall)`.
    pub utilization: f64,
    /// Queue-occupancy histogram: `occupancy[q]` counts pulls that found
    /// `q` mini-batches buffered in the channel (length = capacity + 1).
    pub occupancy: Vec<u64>,
    /// Measured consumer-side inter-arrival gaps, ready to replay through
    /// [`simulate_measured`] (per-RM-model calibration).
    pub inter_arrivals: Vec<Duration>,
    /// Final [`BatchSource::stats`] snapshot of the producer fleet:
    /// completed partitions, emulated P2P / boundary link traffic, and the
    /// fleet's recovery activity (retries, failovers, quarantines,
    /// per-device fault counts) when the source tracks recovery.
    pub stream: StreamStats,
}

impl TrainerReport {
    /// The producer fleet's recovery activity, when the source reported
    /// one (shorthand for `self.stream.recovery.as_ref()`).
    #[must_use]
    pub fn recovery(&self) -> Option<&RunReport> {
        self.stream.recovery.as_ref()
    }

    /// Share of wall-clock time the trainer spent stalled.
    #[must_use]
    pub fn stall_share(&self) -> f64 {
        let total = self.elapsed.as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            (self.stall.as_secs_f64() / total).min(1.0)
        }
    }

    /// Mean channel occupancy observed across all pulls.
    #[must_use]
    pub fn mean_occupancy(&self) -> f64 {
        let pulls: u64 = self.occupancy.iter().sum();
        if pulls == 0 {
            return 0.0;
        }
        let weighted: u64 = self.occupancy.iter().enumerate().map(|(q, &n)| q as u64 * n).sum();
        weighted as f64 / pulls as f64
    }

    /// Replays this run's measured inter-arrival process through the
    /// discrete-event trainer simulation — the calibration loop that ties
    /// [`simulate_measured`] to the executor actually built in this repo.
    #[must_use]
    pub fn replay(
        &self,
        gpu: &GpuTrainModel,
        model: &RmConfig,
        config: &PipelineConfig,
    ) -> PipelineReport {
        simulate_measured(&self.inter_arrivals, gpu, model, config)
    }
}

/// A producer the trainer can consume: a blocking pull of preprocessed
/// mini-batches plus the channel introspection the occupancy histogram
/// needs. Implemented by all three streaming fleets — the host executor
/// ([`presto_ops::stream::BatchStream`]), the in-storage emulation
/// ([`crate::isp_worker::IspBatchStream`]), the hybrid split executor
/// ([`crate::split::SplitBatchStream`]) — and by the multi-tenant
/// service's per-job handle ([`crate::service::JobHandle`]), so a
/// `Trainer` plugs into any of them unchanged.
pub trait BatchSource {
    /// Pulls the next mini-batch, blocking until one is ready; `None` ends
    /// the stream.
    fn next_batch(&mut self) -> Option<Result<StreamedBatch, PreprocessError>>;

    /// Output-channel capacity (sizes the occupancy histogram).
    fn capacity(&self) -> usize;

    /// Mini-batches currently buffered in the output channel.
    fn queued(&self) -> usize;

    /// Consolidated fleet counters ([`StreamStats`]): queue depth,
    /// completed partitions, emulated P2P / boundary link traffic, and the
    /// recovery snapshot. The default covers sources without
    /// instrumentation (capacity and live queue depth only; everything
    /// else zero / `None`).
    fn stats(&self) -> StreamStats {
        StreamStats { capacity: self.capacity(), queued: self.queued(), ..StreamStats::default() }
    }
}

impl BatchSource for BatchStream {
    fn next_batch(&mut self) -> Option<Result<StreamedBatch, PreprocessError>> {
        self.next()
    }

    fn capacity(&self) -> usize {
        BatchStream::capacity(self)
    }

    fn queued(&self) -> usize {
        BatchStream::queued(self)
    }

    fn stats(&self) -> StreamStats {
        BatchStream::stats(self)
    }
}

impl<S: BatchSource + ?Sized> BatchSource for Box<S> {
    fn next_batch(&mut self) -> Option<Result<StreamedBatch, PreprocessError>> {
        (**self).next_batch()
    }

    fn capacity(&self) -> usize {
        (**self).capacity()
    }

    fn queued(&self) -> usize {
        (**self).queued()
    }

    fn stats(&self) -> StreamStats {
        (**self).stats()
    }
}

impl BatchSource for ShuffledStream {
    fn next_batch(&mut self) -> Option<Result<StreamedBatch, PreprocessError>> {
        self.next()
    }

    fn capacity(&self) -> usize {
        ShuffledStream::capacity(self)
    }

    fn queued(&self) -> usize {
        ShuffledStream::queued(self)
    }

    fn stats(&self) -> StreamStats {
        ShuffledStream::stats(self)
    }
}

/// The consuming trainer: pulls mini-batches from a [`BatchSource`],
/// spends [`TrainerConfig`]'s compute on each, and reports consumer-side
/// goodput, stall time and queue occupancy.
#[derive(Debug, Clone, Copy)]
pub struct Trainer {
    config: TrainerConfig,
}

impl Trainer {
    /// Creates a trainer with the given compute model.
    #[must_use]
    pub fn new(config: TrainerConfig) -> Self {
        Trainer { config }
    }

    /// The trainer's compute model.
    #[must_use]
    pub fn config(&self) -> TrainerConfig {
        self.config
    }

    /// Consumes `source` to exhaustion, training every mini-batch.
    ///
    /// # Errors
    ///
    /// Returns the first producer error; dropping the source on the way
    /// out stops the remaining producers.
    pub fn run<S: BatchSource>(&self, mut source: S) -> Result<TrainerReport, PreprocessError> {
        let capacity = source.capacity().max(1);
        let mut occupancy = vec![0u64; capacity + 1];
        let mut arrivals: Vec<Duration> = Vec::new();
        let mut stall = Duration::ZERO;
        let mut compute = Duration::ZERO;
        let mut rows = 0usize;
        let mut batches = 0usize;
        let start = Instant::now();
        loop {
            let wait_from = Instant::now();
            let Some(item) = source.next_batch() else { break };
            let streamed = item?;
            stall += wait_from.elapsed();
            occupancy[source.queued().min(capacity)] += 1;
            arrivals.push(streamed.arrived);
            let batch_rows = streamed.batch.rows();
            let step = self.config.step_for(batch_rows);
            if !step.is_zero() {
                std::thread::sleep(step);
            }
            compute += step;
            rows += batch_rows;
            batches += 1;
        }
        let elapsed = start.elapsed();
        let busy = compute + stall;
        // Snapshot the fleet's consolidated counters before the source
        // drops (final: every producer has delivered or failed by now).
        let stream = source.stats();
        Ok(TrainerReport {
            batches,
            rows,
            elapsed,
            compute,
            stall,
            goodput: rows as f64 / elapsed.as_secs_f64().max(1e-12),
            utilization: if busy.is_zero() {
                0.0
            } else {
                compute.as_secs_f64() / busy.as_secs_f64()
            },
            occupancy,
            inter_arrivals: inter_arrivals(&arrivals),
            stream,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(system: &System, batches: usize) -> PipelineReport {
        let gpu = GpuTrainModel::a100();
        simulate(
            system,
            &gpu,
            &RmConfig::rm5(),
            &PipelineConfig { batches, queue_capacity: 8, num_gpus: 1 },
        )
    }

    #[test]
    fn starved_gpu_has_low_utilization() {
        // 16 co-located workers on RM5: the Fig. 3 situation (< 20% util).
        let report = run(&System::colocated(16), 48);
        assert!(
            report.gpu_utilization < 0.25,
            "colocated(16) utilization {:.2}",
            report.gpu_utilization
        );
        assert_eq!(report.batches_trained, 48);
    }

    #[test]
    fn provisioned_fleet_saturates_gpu() {
        // Enough Disagg cores to exceed demand: utilization near 1.
        let report = run(&System::disagg(400), 48);
        assert!(report.gpu_utilization > 0.9, "utilization {:.2}", report.gpu_utilization);
    }

    #[test]
    fn more_workers_never_hurt() {
        let a = run(&System::disagg(16), 32).training_throughput;
        let b = run(&System::disagg(64), 32).training_throughput;
        let c = run(&System::disagg(256), 32).training_throughput;
        assert!(b > a);
        assert!(c >= b * 0.99);
    }

    #[test]
    fn queue_respects_capacity() {
        let gpu = GpuTrainModel::a100();
        let report = simulate(
            &System::disagg(512),
            &gpu,
            &RmConfig::rm5(),
            &PipelineConfig { batches: 64, queue_capacity: 4, num_gpus: 1 },
        );
        assert!(report.peak_queue <= 4 + 1, "peak queue {}", report.peak_queue);
    }

    #[test]
    fn training_throughput_capped_by_gpu() {
        let gpu = GpuTrainModel::a100();
        let max = gpu.max_throughput(&RmConfig::rm5());
        let report = run(&System::disagg(1024), 64);
        assert!(report.training_throughput <= max * 1.01);
        assert!(report.training_throughput > max * 0.8);
    }

    #[test]
    fn multi_gpu_needs_proportional_supply() {
        let gpu = GpuTrainModel::a100();
        let single = simulate(
            &System::presto_smartssd(2),
            &gpu,
            &RmConfig::rm5(),
            &PipelineConfig { batches: 64, queue_capacity: 8, num_gpus: 1 },
        );
        let eight = simulate(
            &System::presto_smartssd(2),
            &gpu,
            &RmConfig::rm5(),
            &PipelineConfig { batches: 64, queue_capacity: 8, num_gpus: 8 },
        );
        assert!(eight.gpu_utilization < single.gpu_utilization);
    }

    #[test]
    fn measured_fast_arrivals_saturate_the_gpu() {
        let gpu = GpuTrainModel::a100();
        let step = gpu.step_time(&RmConfig::rm1()).seconds();
        // Arrivals 50x faster than training: the GPU is the bottleneck.
        let gaps = vec![Duration::from_secs_f64(step / 50.0); 16];
        let report = simulate_measured(
            &gaps,
            &gpu,
            &RmConfig::rm1(),
            &PipelineConfig { batches: 128, queue_capacity: 8, num_gpus: 1 },
        );
        assert_eq!(report.batches_trained, 128);
        assert!(report.gpu_utilization > 0.95, "utilization {:.3}", report.gpu_utilization);
        assert!(report.peak_queue <= 8, "peak queue {}", report.peak_queue);
    }

    #[test]
    fn measured_slow_arrivals_starve_the_gpu_proportionally() {
        let gpu = GpuTrainModel::a100();
        let step = gpu.step_time(&RmConfig::rm1()).seconds();
        // One batch every 4 step-times: utilization must settle near 25%.
        let gaps = vec![Duration::from_secs_f64(step * 4.0)];
        let report = simulate_measured(
            &gaps,
            &gpu,
            &RmConfig::rm1(),
            &PipelineConfig { batches: 64, queue_capacity: 8, num_gpus: 1 },
        );
        assert!(
            (report.gpu_utilization - 0.25).abs() < 0.05,
            "utilization {:.3}",
            report.gpu_utilization
        );
    }

    #[test]
    fn measured_replay_cycles_and_respects_capacity() {
        let gpu = GpuTrainModel::a100();
        // Bursty trace shorter than the run: two instant arrivals then a
        // long silence, replayed cyclically through a capacity-2 queue.
        let step = gpu.step_time(&RmConfig::rm1()).seconds();
        let gaps = [0.0, 0.0, step * 3.0].map(Duration::from_secs_f64);
        let report = simulate_measured(
            &gaps,
            &gpu,
            &RmConfig::rm1(),
            &PipelineConfig { batches: 32, queue_capacity: 2, num_gpus: 1 },
        );
        assert_eq!(report.batches_trained, 32);
        assert!(report.peak_queue <= 2, "peak queue {}", report.peak_queue);
        assert!(report.training_throughput > 0.0);
    }

    #[test]
    fn measured_empty_trace_means_instant_supply() {
        let gpu = GpuTrainModel::a100();
        let report = simulate_measured(
            &[],
            &gpu,
            &RmConfig::rm1(),
            &PipelineConfig { batches: 16, queue_capacity: 4, num_gpus: 1 },
        );
        assert_eq!(report.batches_trained, 16);
        assert!(report.gpu_utilization > 0.99, "utilization {:.3}", report.gpu_utilization);
    }

    #[test]
    fn zero_batches_terminate() {
        let gpu = GpuTrainModel::a100();
        let report = simulate(
            &System::disagg(4),
            &gpu,
            &RmConfig::rm1(),
            &PipelineConfig { batches: 0, queue_capacity: 4, num_gpus: 1 },
        );
        assert_eq!(report.batches_trained, 0);
    }

    // --- Trainer in the loop ---

    use presto_datagen::Dataset;
    use presto_ops::{FleetConfig, PreprocessPlan};

    fn tiny_dataset(partitions: usize, rows: usize) -> (RmConfig, PreprocessPlan, Dataset) {
        let mut c = RmConfig::rm1();
        c.batch_size = rows;
        let plan = PreprocessPlan::from_config(&c, 1).expect("plan");
        let ds = Dataset::generate(&c, partitions, rows, 2, 11).expect("dataset");
        (c, plan, ds)
    }

    #[test]
    fn instant_trainer_consumes_every_batch() {
        let (_, plan, ds) = tiny_dataset(6, 64);
        let stream = BatchStream::spawn(&plan, ds.partitions(), &FleetConfig::new(2, 3));
        let report = Trainer::new(TrainerConfig::instant()).run(stream).expect("trains");
        assert_eq!(report.batches, 6);
        assert_eq!(report.rows, 6 * 64);
        assert!(report.goodput > 0.0);
        assert_eq!(report.occupancy.len(), 3 + 1);
        assert_eq!(report.occupancy.iter().sum::<u64>(), 6, "one sample per pull");
        assert_eq!(report.inter_arrivals.len(), 5, "N batches give N-1 gaps");
        assert_eq!(report.compute, Duration::ZERO);
        assert!(report.utilization < 1.0, "an instant trainer only ever stalls");
    }

    #[test]
    fn slow_trainer_keeps_the_queue_full_and_rarely_stalls() {
        let (_, plan, ds) = tiny_dataset(8, 32);
        let stream = BatchStream::spawn(&plan, ds.partitions(), &FleetConfig::new(2, 2));
        let trainer = Trainer::new(TrainerConfig::per_batch(Duration::from_millis(5)));
        let report = trainer.run(stream).expect("trains");
        assert_eq!(report.batches, 8);
        assert!(report.compute >= Duration::from_millis(40));
        assert!(
            report.utilization > 0.5,
            "a 5ms/batch trainer over tiny partitions must be compute-bound, got {:.2}",
            report.utilization
        );
        // After the first pull the producers run ahead: most pulls must
        // find a non-empty queue.
        let nonempty: u64 = report.occupancy[1..].iter().sum();
        assert!(nonempty >= 4, "occupancy {:?}", report.occupancy);
        assert!(report.stall_share() < 0.5, "stall share {:.2}", report.stall_share());
    }

    #[test]
    fn trainer_surfaces_producer_errors() {
        let (_, plan, ds) = tiny_dataset(4, 32);
        let mut partitions = ds.partitions().to_vec();
        let bytes = partitions[1].blob.as_bytes().to_vec();
        partitions[1].blob = presto_columnar::MemBlob::new(bytes[..bytes.len() / 3].to_vec());
        let stream = BatchStream::spawn(&plan, &partitions, &FleetConfig::new(1, 2));
        let result = Trainer::new(TrainerConfig::instant()).run(stream);
        assert!(result.is_err(), "corrupt partition must surface to the trainer");
    }

    #[test]
    fn per_model_calibration_prices_rows_not_batches() {
        let gpu = GpuTrainModel::a100();
        let config = RmConfig::rm1();
        let calibrated = TrainerConfig::for_model(&gpu, &config, 1.0);
        let full = calibrated.step_for(config.batch_size);
        let expected = gpu.step_time(&config).seconds();
        assert!((full.as_secs_f64() - expected).abs() < expected * 0.01);
        // Half the rows cost half the compute; scale shrinks linearly.
        let half = calibrated.step_for(config.batch_size / 2);
        assert!((half.as_secs_f64() * 2.0 - expected).abs() < expected * 0.02);
        let scaled = TrainerConfig::for_model(&gpu, &config, 0.25).step_for(config.batch_size);
        assert!((scaled.as_secs_f64() * 4.0 - expected).abs() < expected * 0.02);
        assert_eq!(TrainerConfig::instant().step_for(1024), Duration::ZERO);
    }

    #[test]
    fn trainer_trace_replays_through_the_simulation() {
        let (config, plan, ds) = tiny_dataset(8, 64);
        let stream = BatchStream::spawn(&plan, ds.partitions(), &FleetConfig::new(2, 4));
        let report = Trainer::new(TrainerConfig::instant()).run(stream).expect("trains");
        let gpu = GpuTrainModel::a100();
        let sim = report.replay(
            &gpu,
            &config,
            &PipelineConfig { batches: 32, queue_capacity: 8, num_gpus: 1 },
        );
        assert_eq!(sim.batches_trained, 32);
        assert!(sim.gpu_utilization > 0.0);
    }

    #[test]
    fn mean_occupancy_weights_the_histogram() {
        let report = TrainerReport {
            batches: 4,
            rows: 4,
            elapsed: Duration::from_secs(1),
            compute: Duration::ZERO,
            stall: Duration::from_secs(1),
            goodput: 4.0,
            utilization: 0.0,
            occupancy: vec![2, 0, 2],
            inter_arrivals: Vec::new(),
            stream: StreamStats::default(),
        };
        assert!((report.mean_occupancy() - 1.0).abs() < 1e-12);
        assert!((report.stall_share() - 1.0).abs() < 1e-12);
    }
}
