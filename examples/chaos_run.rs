//! Chaos ablation: goodput under injected storage faults, and the
//! ISP→host failover path surviving a permanent device death.
//!
//! Part 1 (sweep): the same dataset is streamed through the Disagg host
//! fleet and the PreSto ISP fleet at increasing per-read transient-fault
//! rates. A consuming [`Trainer`] reports goodput, and the producer's
//! [`RunReport`] (surfaced through `TrainerReport::recovery`) shows the
//! retries and faults behind the degradation — the data itself stays
//! bit-identical to the fault-free run at every rate.
//!
//! Part 2 (failover): an ISP device dies permanently mid-run. The
//! consecutive-failure breaker quarantines it, its remaining partitions
//! fail over to the host fleet (the graph runner is bit-identical on both
//! sides), and the run completes with output equal to the fault-free
//! reference. The example asserts this — it doubles as the CI chaos
//! ablation.
//!
//! Run with: `cargo run --release --example chaos_run`
//!
//! Environment knobs (for CI and quick runs):
//! * `PRESTO_CHAOS_PARTITIONS` — partitions to generate (default 12)
//! * `PRESTO_CHAOS_ROWS` — rows per partition (default 1024)
//! * `PRESTO_FAULT_SEED` — fault-plan seed (default 42)

use std::sync::Arc;
use std::time::Duration;

use presto::columnar::{FaultInjector, FaultPlan};
use presto::core::{IspBatchStream, Trainer, TrainerConfig};
use presto::datagen::{Dataset, Partition, RmConfig};
use presto::metrics::{samples_per_sec, TextTable};
use presto::ops::{
    preprocess_partition, BatchStream, FleetConfig, MiniBatch, PreprocessPlan, RetryPolicy,
};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Re-keys every partition's blob through `injector`; the original dataset
/// stays pristine as the fault-free reference.
fn armed(ds: &Dataset, injector: &Arc<FaultInjector>) -> Vec<Partition> {
    ds.partitions()
        .iter()
        .map(|p| Partition {
            index: p.index,
            device: p.device,
            rows: p.rows,
            blob: p.blob.clone().with_faults(injector, p.device, p.index),
        })
        .collect()
}

fn main() {
    let num_partitions = env_usize("PRESTO_CHAOS_PARTITIONS", 12);
    let rows = env_usize("PRESTO_CHAOS_ROWS", 1024);
    let seed = env_u64("PRESTO_FAULT_SEED", 42);

    let mut config = RmConfig::rm1();
    config.batch_size = rows;
    let plan = PreprocessPlan::from_config(&config, 42).expect("valid RM1 plan");
    let dataset = Dataset::generate(&config, num_partitions, rows, 2, 7).expect("generate dataset");
    println!(
        "dataset: {} partitions x {} rows of {} across 2 devices, fault seed {seed}\n",
        num_partitions, rows, config.name
    );

    let reference: Vec<MiniBatch> = dataset
        .partitions()
        .iter()
        .map(|p| preprocess_partition(&plan, p.blob.clone()).expect("fault-free pass").0)
        .collect();

    // Per-read rates: a whole-partition Extract issues ~40 column reads, so
    // even 2% per read faults roughly half of all attempts. The generous
    // attempt budget lets every partition eventually clear; quarantine is
    // off because these faults are random, not a dying device.
    let policy = RetryPolicy::recover()
        .with_max_attempts(2000)
        .with_backoff(Duration::ZERO, Duration::from_micros(50))
        .with_quarantine_after(0);
    let trainer = Trainer::new(TrainerConfig::instant());

    println!("-- goodput vs injected transient-fault rate (per column read) --");
    let mut table =
        TextTable::new(vec!["fleet", "fault rate", "goodput", "faults", "retries", "delivered"]);
    for rate in [0.0, 0.005, 0.01, 0.02] {
        for fleet in ["Disagg (host)", "PreSto (ISP)"] {
            let injector = FaultPlan::new(seed).with_transient_rate(rate).arm();
            let partitions = armed(&dataset, &injector);
            let report = if fleet.starts_with("Disagg") {
                let cfg = FleetConfig::new(3, 4).with_recovery(policy.clone());
                trainer.run(BatchStream::spawn(&plan, &partitions, &cfg))
            } else {
                let cfg = FleetConfig::new(2, 4).with_recovery(policy.clone());
                trainer.run(IspBatchStream::spawn(&plan, &partitions, &cfg))
            }
            .expect("recovered run completes");
            let report_recovery = report.recovery().cloned();
            let recovery = report_recovery.expect("stream reports recovery");
            table.row(vec![
                fleet.to_string(),
                format!("{:.1}%", rate * 100.0),
                samples_per_sec(report.goodput),
                recovery.faults.to_string(),
                recovery.retries.to_string(),
                format!("{}/{}", recovery.delivered, recovery.partitions),
            ]);
        }
    }
    println!("{}", table.render());

    // ---- Part 2: permanent ISP device death, mid-run ----
    println!("-- permanent ISP device death: quarantine + host failover --");
    // Device 1 serves ~1.5 partitions' worth of reads, then every further
    // read fails: the breaker trips after two consecutive failures and the
    // host fleet re-reads the quarantined device's partitions from media.
    let injector = FaultPlan::new(seed).with_device_death(1, 60).arm();
    let partitions = armed(&dataset, &injector);
    let policy = RetryPolicy::recover().with_max_attempts(2).with_quarantine_after(2);
    let mut stream =
        IspBatchStream::spawn(&plan, &partitions, &FleetConfig::new(2, 4).with_recovery(policy));
    let mut batches: Vec<(usize, bool, MiniBatch)> = stream
        .by_ref()
        .map(|item| item.expect("failover completes every partition"))
        .map(|b| (b.partition, b.via_failover, b.batch))
        .collect();
    batches.sort_by_key(|(pos, ..)| *pos);
    let report = stream.run_report();

    let failovers = batches.iter().filter(|(_, via, _)| *via).count();
    let streamed: Vec<MiniBatch> = batches.into_iter().map(|(.., b)| b).collect();
    assert_eq!(streamed, reference, "failover output must be bit-identical to fault-free");
    assert!(report.failovers > 0, "the dead device's partitions must use the host path");
    assert!(report.quarantined.contains(&1), "device 1 must be quarantined");
    assert!(report.failed_partitions.is_empty(), "no partition is left behind");

    println!(
        "delivered {}/{} partitions ({} via host failover), {} faults, {} retries",
        report.delivered, report.partitions, failovers, report.faults, report.retries
    );
    println!("quarantined device slots: {:?}", report.quarantined);
    let mut events = TextTable::new(vec!["event", "count"]);
    for (label, count) in [
        ("faults", report.faults),
        ("retries", report.retries),
        ("failovers", report.failovers),
        ("stragglers", report.stragglers),
    ] {
        events.row(vec![label.to_string(), count.to_string()]);
    }
    println!("{}", events.render());
    println!("failover output bit-identical to the fault-free reference ✓");
}
